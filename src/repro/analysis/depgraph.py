"""Intra-procedural forward dependence traversals.

``forward_dependent_instructions`` computes the set of instructions reachable
from a seed through data dependence (operand use, including one level of
store-to/load-from the *same static pointer value*, matching clang -O0 local
spills) and control dependence (everything control dependent on a dependent
branch).  This is the traversal under the adhoc-synchronization test (paper
section 5.1: "it conducts a intra-procedural forward data and control
dependency analysis to find the propagation of the corrupted variable").
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.ir.cfg import cfg_for
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Br, Instruction, Load, Store


def instructions_after(seed: Instruction) -> List[Instruction]:
    """All instructions that may execute after ``seed`` in its function.

    CFG-forward order: the rest of the seed's block, then every block
    reachable from it (a block reachable through a back edge contributes all
    of its instructions, including ones lexically before the seed).
    """
    block = seed.block
    if block is None:
        return []
    result: List[Instruction] = []
    index = block.index_of(seed)
    result.extend(block.instructions[index + 1:])
    seen: Set[BasicBlock] = {block}
    stack: List[BasicBlock] = list(block.successors())
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        result.extend(current.instructions)
        stack.extend(current.successors())
    # The seed's own block may be re-entered through a loop back edge.
    for successor_chain_block in seen:
        for successor in successor_chain_block.successors():
            if successor is block:
                result.extend(block.instructions[: index + 1])
                return result
    return result


def forward_dependent_instructions(
    seeds: Iterable[Instruction], function: Function,
) -> Set[Instruction]:
    """Forward data+control dependence closure of ``seeds`` inside ``function``."""
    cfg = cfg_for(function)
    dependent: Set[Instruction] = set(seeds)
    dependent_branches: List[Br] = [
        i for i in dependent if isinstance(i, Br) and i.is_conditional
    ]
    changed = True
    while changed:
        changed = False
        for instruction in function.instructions():
            if instruction in dependent:
                continue
            hit = any(operand in dependent for operand in instruction.operands)
            if not hit:
                hit = any(
                    cfg.is_control_dependent(instruction, branch)
                    for branch in dependent_branches
                )
            if not hit and isinstance(instruction, Load):
                hit = stores_to_same_pointer(instruction, dependent)
            if hit:
                dependent.add(instruction)
                if isinstance(instruction, Br) and instruction.is_conditional:
                    dependent_branches.append(instruction)
                changed = True
    return dependent


def stores_to_same_pointer(load: Load, dependent: Set[Instruction]) -> bool:
    """Whether a dependent store writes through the load's exact pointer value.

    A cheap must-alias rule: a corrupted value stored to an alloca/GEP and
    reloaded through the *same SSA pointer* propagates.  This compensates for
    the deliberate absence of pointer analysis (paper section 6.1: "our
    design did not incorporate pointer analysis").
    """
    pointer = load.pointer
    return any(
        isinstance(instruction, Store)
        and instruction.pointer is pointer
        and instruction.value in dependent
        for instruction in dependent
    )
