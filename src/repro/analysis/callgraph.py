"""A static call graph over a module.

Direct calls produce precise edges.  Indirect calls are resolved only from
runtime call stacks when OWL supplies them — the paper's design decision
(section 6.1): "leveraging the call stacks to precisely resolve the actually
invoked function pointers (another main issue in pointer analysis)".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import ExternalFunction, Function
from repro.ir.instructions import Call
from repro.ir.module import Module


class CallGraph:
    """callers/callees maps plus call-site lookup."""

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self.call_sites: Dict[str, List[Call]] = {}
        self.indirect_sites: List[Call] = []
        for function in module.functions.values():
            self.callees.setdefault(function.name, set())
            for instruction in function.instructions():
                if not isinstance(instruction, Call):
                    continue
                callee = instruction.callee
                if isinstance(callee, (Function, ExternalFunction)):
                    self.callees[function.name].add(callee.name)
                    self.callers.setdefault(callee.name, set()).add(function.name)
                    self.call_sites.setdefault(callee.name, []).append(instruction)
                    # thread_create(fn, arg) starts fn on a new thread: treat
                    # it as a call edge so spread/caller queries see through
                    # thread boundaries, like the paper's kernel analysis does
                    # for syscall entry points.
                    if callee.name == "thread_create" and instruction.operands:
                        entry = instruction.operands[0]
                        if isinstance(entry, Function):
                            self.callees[function.name].add(entry.name)
                            self.callers.setdefault(entry.name, set()).add(
                                function.name)
                            self.call_sites.setdefault(entry.name, []).append(
                                instruction)
                else:
                    self.indirect_sites.append(instruction)

    def callees_of(self, name: str) -> Set[str]:
        return self.callees.get(name, set())

    def callers_of(self, name: str) -> Set[str]:
        return self.callers.get(name, set())

    def sites_calling(self, name: str) -> List[Call]:
        return self.call_sites.get(name, [])

    def reachable_from(self, name: str) -> Set[str]:
        """Transitive callees (internal names only)."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callees.get(current, ()))
        return seen

    def static_distance(self, from_function: str, to_function: str,
                        limit: int = 32) -> Optional[int]:
        """BFS hop count through call edges (either direction), or None.

        Used by the study analyses to measure how far a bug is from its
        vulnerability site (paper Finding II: 12/27 attacks are spread across
        different functions, defeating short-distance consequence analysis).
        """
        if from_function == to_function:
            return 0
        frontier = {from_function}
        seen = {from_function}
        for distance in range(1, limit + 1):
            next_frontier: Set[str] = set()
            for name in frontier:
                neighbours = self.callees.get(name, set()) | self.callers.get(name, set())
                for neighbour in neighbours:
                    if neighbour == to_function:
                        return distance
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.add(neighbour)
            if not next_frontier:
                return None
            frontier = next_frontier
        return None
