#!/usr/bin/env python3
"""Differential-execution oracle: reference vs optimized VM, bit-for-bit.

Runs every requested program twice per seed — once with every interpreter
hot-path optimization disabled (``reference``) and once as shipped — and
asserts the two executions are observably identical: same trace-event
stream (thread/step/address/size/value/call stack/variable), same fault
lists, same race-report sets and, with ``--counters``, same
``StageCounters.parity_dict()`` from a full pipeline run.  While doing so
it measures reference vs optimized interpreter throughput and writes the
comparison into the schema-4 ``diff_oracle`` metrics block.

With ``--fuse`` a third, fused execution (superinstructions on — see
:mod:`repro.runtime.fuse`) joins every sweep and must be bit-identical to
the optimized one; the record/replay backbone is additionally checked to
be byte-identical with the flag on and off.  ``--fuse-bench`` measures
the fused-vs-optimized steps/s ratio under a round-robin scheduler (where
``run_length`` has real no-preempt windows — the oracle's RandomScheduler
preempts geometrically, so its ``fused_speedup`` proves parity, not
performance) and ``--fuse-floor`` turns that into a gate.

Usage::

    PYTHONPATH=src python tools/diff_oracle.py                # all apps, 10 seeds
    PYTHONPATH=src python tools/diff_oracle.py --programs memcached apache_log \\
        --seeds 10 --counters --fuse --metrics-out benchmarks/out
    PYTHONPATH=src python tools/diff_oracle.py --programs memcached \\
        --fuse-bench --fuse-floor 1.3

Exit status 0 when every program is divergence-free, 1 otherwise (the
first divergence per program is printed with both sides of the mismatch).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.apps.registry import all_specs, spec_by_name
from repro.runtime.diffcheck import (
    benchmark_fused,
    diff_counters,
    diff_program,
    diff_record_replay,
    diff_reports,
)
from repro.runtime.metrics import PipelineMetrics, RunStats


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="assert optimized VM execution is bit-identical to the "
                    "reference implementation, and measure the speedup")
    parser.add_argument(
        "--programs", nargs="*", default=None, metavar="NAME",
        help="spec names to check (default: all registered apps)")
    parser.add_argument(
        "--seeds", type=int, default=10, metavar="N",
        help="seeds per program for the event-stream sweep (default: 10)")
    parser.add_argument(
        "--counters", action="store_true",
        help="also run the full pipeline per mode and compare "
             "StageCounters.parity_dict() (slower)")
    parser.add_argument(
        "--metrics-out", default=None, metavar="DIR",
        help="write metrics_diffcheck_<program>.json (schema 4, with the "
             "diff_oracle block) under DIR")
    parser.add_argument(
        "--stop-on-divergence", action="store_true",
        help="stop a program's seed sweep at its first divergence")
    parser.add_argument(
        "--fuse", action="store_true",
        help="also run every sweep a third time with superinstruction "
             "fusion on, assert it is bit-identical to the optimized run, "
             "and assert record/replay logs and fingerprints are identical "
             "with the flag on and off")
    parser.add_argument(
        "--fuse-bench", action="store_true",
        help="measure fused vs optimized steps/s under a round-robin "
             "scheduler with a shared fuse engine (the configuration "
             "fusion is designed for)")
    parser.add_argument(
        "--fuse-floor", type=float, default=None, metavar="X",
        help="with --fuse-bench, fail any program whose fused speedup "
             "falls below X")
    return parser.parse_args(argv)


def check_program(spec, args):
    diff = diff_program(spec, seeds=range(args.seeds),
                        stop_on_divergence=args.stop_on_divergence,
                        fuse=args.fuse)
    diff = diff_reports(spec, diff, fuse=args.fuse)
    if args.counters:
        diff = diff_counters(spec, diff, fuse=args.fuse)
    if args.fuse:
        diff.divergences.extend(diff_record_replay(
            spec, seeds=range(min(args.seeds, 3))))
    return diff


def save_metrics(diff, out_dir, bench=None):
    metrics = PipelineMetrics(diff.program, jobs=1)
    with metrics.stage("reference_execute", unit="seeds") as stage:
        stage.items = len(diff.seeds)
        stage.absorb_run_stats([RunStats(
            seed=-1, reason="sweep", steps=diff.reference_steps,
            wall_seconds=diff.reference_seconds)])
    with metrics.stage("optimized_execute", unit="seeds") as stage:
        stage.items = len(diff.seeds)
        stage.absorb_run_stats([RunStats(
            seed=-1, reason="sweep", steps=diff.optimized_steps,
            wall_seconds=diff.optimized_seconds)])
    # the stage context manager measured its own (trivial) wall time; the
    # real timings come from the sweep itself
    metrics.stages[0].wall_seconds = diff.reference_seconds
    metrics.stages[1].wall_seconds = diff.optimized_seconds
    metrics.total_seconds = diff.reference_seconds + diff.optimized_seconds
    metrics.diff_oracle = diff.as_dict()
    if bench is not None:
        metrics.diff_oracle["fused_bench"] = bench
    path = os.path.join(out_dir, "metrics_diffcheck_%s.json" % diff.program)
    return metrics.save(path)


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    if args.programs:
        specs = [spec_by_name(name) for name in args.programs]
    else:
        specs = all_specs()
    failures = 0
    for spec in specs:
        diff = check_program(spec, args)
        verdict = "identical" if diff.identical else "DIVERGED"
        fused_note = ""
        if args.fuse:
            fused_note = "  fused %10.0f steps/s" % (
                diff.fused_steps_per_second)
        print("%-14s seeds=%d  ref %10.0f steps/s  opt %10.0f steps/s%s  "
              "speedup %.2fx  %s" % (
                  diff.program, len(diff.seeds),
                  diff.reference_steps_per_second,
                  diff.optimized_steps_per_second, fused_note,
                  diff.speedup, verdict))
        for divergence in diff.divergences:
            print("  " + divergence.describe().replace("\n", "\n  "))
        if not diff.identical:
            failures += 1
        bench = None
        if args.fuse_bench:
            bench = benchmark_fused(spec, seeds=range(args.seeds))
            print("  fuse bench: %.2fx over optimized (round-robin, "
                  "%d%% fused steps, %d blocks)" % (
                      bench["fused_speedup"],
                      round(bench["fused_step_share"] * 100),
                      bench["compiled_blocks"]))
            if (args.fuse_floor is not None
                    and bench["fused_speedup"] < args.fuse_floor):
                print("  FUSE FLOOR VIOLATED: %.3fx < %.2fx" % (
                    bench["fused_speedup"], args.fuse_floor))
                failures += 1
        if args.metrics_out:
            path = save_metrics(diff, args.metrics_out, bench=bench)
            print("  metrics -> %s" % path)
    if failures:
        print("FAIL: %d program(s) diverged" % failures)
        return 1
    print("OK: %d program(s), zero divergence" % len(specs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
