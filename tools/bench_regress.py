#!/usr/bin/env python3
"""Benchmark-trajectory regression gate over ``history.jsonl``.

For every program in the history file, compares the latest record against
a trailing baseline (the median ``steps_per_second`` of the preceding
``--baseline-window`` records for the same program and job count) and
fails when throughput regressed by more than ``--max-regression`` percent.
Independently, it checks the deterministic parity counters: the latest
record must agree bit-for-bit with the most recent prior record for the
same program — counters never legitimately drift without a code change,
so any mismatch across records of the *same* git revision is an error,
and a mismatch across revisions is reported for a human to bless.

Usage::

    PYTHONPATH=src python tools/bench_regress.py                     # gate
    PYTHONPATH=src python tools/bench_regress.py --report-only       # CI FYI
    PYTHONPATH=src python tools/bench_regress.py \\
        --history benchmarks/out/history.jsonl --max-regression 20

Exit status 0 when every program is within budget (or ``--report-only``),
1 on any throughput regression or same-revision parity drift.  Programs
with fewer than two records are skipped (no trajectory yet).
"""

import argparse
import os
import sys
from statistics import median

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.owl.history import default_history_path, load_history


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="fail when the latest benchmark record regresses against "
                    "its trailing baseline")
    parser.add_argument(
        "--history", default=default_history_path(), metavar="PATH",
        help="history.jsonl to gate on (default: %(default)s)")
    parser.add_argument(
        "--max-regression", type=float, default=25.0, metavar="PCT",
        help="maximum tolerated steps/s drop vs the baseline median, in "
             "percent (default: %(default)s)")
    parser.add_argument(
        "--baseline-window", type=int, default=5, metavar="N",
        help="number of trailing records forming the baseline "
             "(default: %(default)s)")
    parser.add_argument(
        "--report-only", action="store_true",
        help="print the comparison but always exit 0 (CI FYI mode)")
    return parser.parse_args(argv)


def group_records(records):
    """history records keyed by (program, jobs), oldest first."""
    groups = {}
    for record in records:
        program = record.get("program")
        if program is None:
            continue
        groups.setdefault((program, record.get("jobs", 1)), []).append(record)
    return groups


def check_throughput(latest, baseline, max_regression):
    """(ok, message) for the latest record vs its trailing baseline."""
    rates = [r.get("steps_per_second", 0.0) for r in baseline]
    rates = [rate for rate in rates if rate > 0.0]
    current = latest.get("steps_per_second", 0.0)
    if not rates or current <= 0.0:
        return True, "no throughput baseline"
    base = median(rates)
    delta_pct = (current - base) / base * 100.0
    message = "%.1f steps/s vs baseline %.1f (%+.1f%%)" % (
        current, base, delta_pct)
    if delta_pct < -max_regression:
        return False, message + " exceeds -%.1f%% budget" % max_regression
    return True, message


def check_parity(latest, previous):
    """(ok, message) comparing the deterministic counters of two records.

    Drift within one git revision is always an error; across revisions it
    is only reported (counter changes are sometimes the point of a PR).
    """
    ours, theirs = latest.get("counters", {}), previous.get("counters", {})
    shared = sorted(set(ours) & set(theirs))
    drifted = [name for name in shared if ours[name] != theirs[name]]
    if not drifted:
        return True, "parity ok (%d counters)" % len(shared)
    detail = ", ".join(
        "%s %s->%s" % (name, theirs[name], ours[name]) for name in drifted)
    same_rev = (latest.get("git_rev") is not None
                and latest.get("git_rev") == previous.get("git_rev"))
    if same_rev:
        return False, "parity DRIFT at rev %s: %s" % (
            latest["git_rev"], detail)
    return True, "counters changed across revisions (review): %s" % detail


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    records = load_history(args.history)
    if not records:
        print("bench_regress: no history at %s (nothing to gate)"
              % args.history)
        return 0

    failures = 0
    for (program, jobs), group in sorted(group_records(records).items()):
        label = "%s (jobs=%d)" % (program, jobs)
        if len(group) < 2:
            print("SKIP %-28s only %d record(s)" % (label, len(group)))
            continue
        latest = group[-1]
        baseline = group[-1 - args.baseline_window:-1]
        ok_perf, perf_msg = check_throughput(latest, baseline,
                                             args.max_regression)
        ok_par, par_msg = check_parity(latest, group[-2])
        status = "PASS" if (ok_perf and ok_par) else "FAIL"
        if not (ok_perf and ok_par):
            failures += 1
        print("%s %-28s %s; %s" % (status, label, perf_msg, par_msg))

    if failures and args.report_only:
        print("bench_regress: %d failure(s) ignored (--report-only)"
              % failures)
        return 0
    if failures:
        print("bench_regress: %d failure(s)" % failures)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
