#!/usr/bin/env python3
"""Check that relative links in the repo's markdown docs resolve.

Scans the root markdown files (README.md, DESIGN.md, EXPERIMENTS.md,
CHANGES.md, ...) and docs/*.md for inline markdown links
(``[text](target)``) and reference definitions (``[label]: target``),
resolves every relative target — including links into ``src/`` and
``tools/`` — against the linking file's directory, and fails if any
points at a file that does not exist.  ``#fragment`` anchors on markdown
targets (and bare same-file ``#fragment`` links) are validated against
the target's actual headings, GitHub-slugified, so renamed sections break
loudly instead of scrolling to the top.  External links
(http/https/mailto) are skipped, not fetched — this is an offline
structural check, suitable for CI.

Usage::

    python tools/check_doc_links.py [repo-root]

Exit status 0 when every link resolves, 1 otherwise (each broken link is
printed as ``file:line: broken link -> target``, dead anchors as
``file:line: dead anchor -> target``).
"""

import os
import re
import sys

DOC_GLOBS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
             "PAPER.md", "CHANGES.md")
DOC_DIRS = ("docs",)

# [text](target) — target stops at the first unbalanced ')'; markdown
# images ![alt](target) match too via the optional leading '!'.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# [label]: target
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root):
    found = []
    for name in DOC_GLOBS:
        path = os.path.join(root, name)
        if os.path.isfile(path):
            found.append(path)
    for directory in DOC_DIRS:
        full = os.path.join(root, directory)
        if os.path.isdir(full):
            for name in sorted(os.listdir(full)):
                if name.endswith(".md"):
                    found.append(os.path.join(full, name))
    return found


def targets_in(path):
    """Yield (line_number, raw_target) for every link in ``path``."""
    in_code_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for match in INLINE_LINK.finditer(line):
                yield number, match.group(1)
            match = REFERENCE_DEF.match(line)
            if match:
                yield number, match.group(1)


HEADING = re.compile(r"^#{1,6}\s+(.*)")
# GitHub slugs keep word characters and hyphens; spaces become hyphens.
SLUG_STRIP = re.compile(r"[^\w\- ]", re.UNICODE)
MARKUP = re.compile(r"[`*_]|\[|\]\([^)]*\)|\]")


def github_slug(heading):
    text = MARKUP.sub("", heading.strip())
    text = SLUG_STRIP.sub("", text.lower())
    return text.replace(" ", "-")


def anchors_in(path, _cache={}):
    """The set of GitHub-style anchor slugs a markdown file defines."""
    if path in _cache:
        return _cache[path]
    slugs = set()
    counts = {}
    in_code_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            match = HEADING.match(line)
            if not match:
                continue
            slug = github_slug(match.group(1))
            seen = counts.get(slug, 0)
            counts[slug] = seen + 1
            slugs.add(slug if not seen else "%s-%d" % (slug, seen))
    _cache[path] = slugs
    return slugs


def check(root):
    broken = []
    checked = 0
    for path in doc_files(root):
        base = os.path.dirname(path)
        for number, target in targets_in(path):
            if target.startswith(SKIP_SCHEMES):
                continue
            relative, _, fragment = target.partition("#")
            if not relative and not fragment:
                continue
            checked += 1
            resolved = path if not relative else \
                os.path.normpath(os.path.join(base, relative))
            if not os.path.exists(resolved):
                broken.append("%s:%d: broken link -> %s" % (
                    os.path.relpath(path, root), number, target))
                continue
            if fragment and resolved.endswith(".md"):
                if fragment.lower() not in anchors_in(resolved):
                    broken.append("%s:%d: dead anchor -> %s" % (
                        os.path.relpath(path, root), number, target))
    return checked, broken


def main(argv):
    root = os.path.abspath(argv[1]) if len(argv) > 1 else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    checked, broken = check(root)
    for line in broken:
        print(line)
    print("checked %d relative links in %d files: %s" % (
        checked, len(doc_files(root)),
        "%d broken" % len(broken) if broken else "all resolve"))
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
