#!/usr/bin/env python3
"""Replay-fidelity oracle: recorded logs must replay bit-for-bit.

For every requested program the tool records each seed once as a bare
(detector-free) :class:`repro.runtime.record.ScheduleLog` with a
``"recorded"``-mode execution fingerprint, then *replays* the log with the
spec's race detector attached and compares the ``"replayed"`` fingerprint
field-by-field (events, faults, recorded faults, exit reason/code, step
count — the same oracle ``tools/diff_oracle.py`` uses for the optimized
VM).  Any divergence, unfaithful replay, or fingerprint mismatch fails
the run: a log replayed on the same IR digest is bit-identical or loudly
divergent, never silently wrong.

It also validates the size claim behind caching logs: every per-seed
``record``-stage cache entry must be smaller than the corresponding
``detect``-stage payload it allows us to regenerate.

Usage::

    PYTHONPATH=src python tools/replay_fidelity.py            # all apps, 10 seeds
    PYTHONPATH=src python tools/replay_fidelity.py --programs memcached \\
        apache_log --seeds 10 --metrics-out benchmarks/out \\
        --record-dir benchmarks/out/records

Exit status 0 when every program replays faithfully, 1 otherwise.
"""

import argparse
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.apps.registry import all_specs, spec_by_name
from repro.owl.batch import (
    _detect_item_key, _detect_payload, _record_item_key, run_seeds_parallel,
)
from repro.owl.cache import ResultCache
from repro.owl.replay import _spec_world, record_program
from repro.runtime.diffcheck import compare_fingerprints
from repro.runtime.metrics import PipelineMetrics, RunStats
from repro.runtime.record import replay_log


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="assert replaying a recorded schedule log reproduces "
                    "the live execution bit-for-bit")
    parser.add_argument(
        "--programs", nargs="*", default=None, metavar="NAME",
        help="spec names to check (default: all registered apps)")
    parser.add_argument(
        "--seeds", type=int, default=10, metavar="N",
        help="seeds per program (default: 10)")
    parser.add_argument(
        "--record-dir", default=None, metavar="DIR",
        help="save the recorded logs under DIR/<program>/ (default: a "
             "temporary directory, deleted afterwards)")
    parser.add_argument(
        "--metrics-out", default=None, metavar="DIR",
        help="write metrics_replay_<program>.json (schema 5, with the "
             "replay block) under DIR")
    parser.add_argument(
        "--skip-size-check", action="store_true",
        help="skip the record-vs-detect cache entry size comparison")
    return parser.parse_args(argv)


def check_fidelity(spec, seeds, record_dir):
    """Record every seed, replay with the detector, compare fingerprints.

    Returns ``(source, mismatches, replay_seconds)`` where ``source`` is
    the :class:`ReplaySource` with its divergence counters filled in and
    ``mismatches`` the list of fingerprint :class:`Divergence` objects.
    """
    if spec.detector == "ski":
        from repro.detectors.ski import SkiDetector as detector_cls
    else:
        from repro.detectors.tsan import TSanDetector as detector_cls
    from repro.detectors.report import ReportSet

    out_dir = os.path.join(record_dir, spec.name)
    source = record_program(spec, seeds=seeds, out_dir=out_dir,
                            fingerprint=True)
    module = spec.build()
    mismatches = []
    replay_started = time.perf_counter()
    for log, recorded in zip(source.logs, source.fingerprints):
        detector = detector_cls(annotations=None, reports=ReportSet())
        outcome = replay_log(
            module, log, observers=[detector],
            inputs=spec.workload_inputs, world=_spec_world(spec),
            fingerprint=True,
        )
        source.replays += 1
        source.schedule_divergences += outcome.schedule_divergences
        source.sync_divergences += outcome.sync_divergences
        source.thread_divergences += outcome.thread_divergences
        if not outcome.faithful:
            source.unfaithful_replays += 1
        divergence = compare_fingerprints(recorded, outcome.fingerprint)
        if divergence is not None:
            mismatches.append(divergence)
    return source, mismatches, time.perf_counter() - replay_started


def check_entry_sizes(spec, seeds, cache_root):
    """Per-seed (record entry bytes, detect entry bytes) via the cache.

    Runs the seed sweep once through :func:`run_seeds_parallel` in record
    mode, warming both cache stages, then measures each pair of entries.
    """
    cache = ResultCache(cache_root)
    module = spec.build()
    logs = []
    run_seeds_parallel(
        spec.detector, module, spec.module_factory, entry=spec.entry,
        inputs=spec.workload_inputs, seeds=seeds, max_steps=spec.max_steps,
        jobs=1, cache=cache, record=True, logs_out=logs,
    )
    pairs = []
    for seed in seeds:
        payload = _detect_payload(
            spec.detector, spec.module_factory, seed, spec.entry,
            spec.workload_inputs, None, spec.max_steps, 3, ())
        detect_path = cache._path(
            "detect", _detect_item_key(cache, module, payload))
        record_path = cache._path(
            "record", _record_item_key(cache, module, payload))
        pairs.append((os.path.getsize(record_path),
                      os.path.getsize(detect_path)))
    return pairs, len(logs)


def save_metrics(spec, source, replay_seconds, out_dir):
    metrics = PipelineMetrics(spec.name, jobs=1)
    with metrics.stage("record", unit="seeds") as stage:
        stage.items = len(source.logs)
        stage.absorb_run_stats(source.record_stats)
    with metrics.stage("replay", unit="seeds") as stage:
        stage.items = source.replays
        stage.absorb_run_stats([RunStats(
            seed=log.seed, reason=log.reason, steps=log.steps)
            for log in source.logs])
    metrics.stages[0].wall_seconds = sum(
        stat.wall_seconds for stat in source.record_stats)
    metrics.stages[1].wall_seconds = replay_seconds
    metrics.total_seconds = (
        metrics.stages[0].wall_seconds + metrics.stages[1].wall_seconds)
    metrics.replay = source.metrics_block()
    path = os.path.join(out_dir, "metrics_replay_%s.json" % spec.name)
    return metrics.save(path)


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    if args.programs:
        specs = [spec_by_name(name) for name in args.programs]
    else:
        specs = all_specs()
    seeds = list(range(args.seeds))
    record_dir = args.record_dir
    temp_dir = None
    if record_dir is None:
        temp_dir = tempfile.mkdtemp(prefix="owl_replay_fidelity_")
        record_dir = temp_dir
    failures = 0
    try:
        for spec in specs:
            source, mismatches, replay_seconds = check_fidelity(
                spec, seeds, record_dir)
            bad = (len(mismatches) + source.total_divergences
                   + source.unfaithful_replays)
            verdict = "bit-identical" if bad == 0 else "DIVERGED"
            print("%-14s seeds=%d  decisions=%d  schedule/sync/thread "
                  "divergences=%d/%d/%d  fingerprint mismatches=%d  %s" % (
                      spec.name, len(source.logs),
                      sum(log.decisions for log in source.logs),
                      source.schedule_divergences, source.sync_divergences,
                      source.thread_divergences, len(mismatches), verdict))
            for divergence in mismatches:
                print("  " + divergence.describe().replace("\n", "\n  "))
            if bad:
                failures += 1
            if not args.skip_size_check:
                cache_root = os.path.join(record_dir, spec.name, "cache")
                pairs, log_count = check_entry_sizes(spec, seeds, cache_root)
                oversized = [(index, log_bytes, detect_bytes)
                             for index, (log_bytes, detect_bytes)
                             in enumerate(pairs)
                             if log_bytes >= detect_bytes]
                print("  cache entries: record %d-%dB vs detect %d-%dB "
                      "per seed (%d logs)" % (
                          min(size for size, _ in pairs),
                          max(size for size, _ in pairs),
                          min(size for _, size in pairs),
                          max(size for _, size in pairs), log_count))
                for index, log_bytes, detect_bytes in oversized:
                    print("  seed %d: record entry %dB >= detect entry %dB"
                          % (seeds[index], log_bytes, detect_bytes))
                if oversized or log_count != len(seeds):
                    failures += 1
            if args.metrics_out:
                path = save_metrics(
                    spec, source, replay_seconds, args.metrics_out)
                print("  metrics -> %s" % path)
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
    if failures:
        print("FAIL: %d program(s) failed replay fidelity" % failures)
        return 1
    print("OK: %d program(s), every replay bit-identical" % len(specs))
    return 0


if __name__ == "__main__":
    sys.exit(main())
