"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.detectors.vectorclock import VectorClock
from repro.ir.types import ArrayType, IntType, StructType, I8, I64
from repro.runtime.memory import Memory, MemoryBlock

clock_maps = st.dictionaries(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=1000),
    max_size=6,
)


class TestVectorClockProperties:
    @given(clock_maps, clock_maps)
    def test_join_is_upper_bound(self, a_map, b_map):
        a = VectorClock(a_map)
        b = VectorClock(b_map)
        joined = a.copy()
        joined.join(b)
        assert a.happens_before(joined)
        assert b.happens_before(joined)

    @given(clock_maps, clock_maps)
    def test_join_commutes(self, a_map, b_map):
        left = VectorClock(a_map)
        left.join(VectorClock(b_map))
        right = VectorClock(b_map)
        right.join(VectorClock(a_map))
        assert left.happens_before(right) and right.happens_before(left)

    @given(clock_maps, clock_maps, clock_maps)
    def test_happens_before_transitive(self, a_map, b_map, c_map):
        a, b, c = VectorClock(a_map), VectorClock(b_map), VectorClock(c_map)
        b.join(a)   # force a <= b
        c.join(b)   # force b <= c
        assert a.happens_before(c)

    @given(clock_maps, st.integers(min_value=1, max_value=8))
    def test_tick_breaks_reverse_order(self, a_map, tid):
        a = VectorClock(a_map)
        later = a.copy()
        later.tick(tid)
        assert a.happens_before(later)
        assert not later.happens_before(a)

    @given(clock_maps, st.integers(min_value=1, max_value=8))
    def test_ordered_with_own_epoch(self, a_map, tid):
        clock = VectorClock(a_map)
        assert clock.ordered_with(tid, clock.get(tid))
        assert not clock.ordered_with(tid, clock.get(tid) + 1)


class TestIntTypeProperties:
    @given(st.sampled_from([8, 16, 32, 64]), st.integers())
    def test_wrap_idempotent(self, bits, value):
        type_ = IntType(bits)
        assert type_.wrap(type_.wrap(value)) == type_.wrap(value)

    @given(st.sampled_from([8, 16, 32, 64]), st.integers())
    def test_wrap_in_range(self, bits, value):
        type_ = IntType(bits)
        wrapped = type_.wrap(value)
        assert type_.min_value <= wrapped <= type_.max_value

    @given(st.sampled_from([8, 16, 32, 64]), st.integers())
    def test_unsigned_wrap_is_mod(self, bits, value):
        type_ = IntType(bits, signed=False)
        assert type_.wrap(value) == value % (1 << bits)

    @given(st.sampled_from([8, 16, 32, 64]), st.integers(), st.integers())
    def test_wrap_congruent_mod_2n(self, bits, a, b):
        type_ = IntType(bits)
        assert (type_.wrap(a + b) - type_.wrap(a) - type_.wrap(b)) % (
            1 << bits) == 0


class TestStructLayoutProperties:
    field_lists = st.lists(
        st.sampled_from([I8, I64, ArrayType(I8, 4), ArrayType(I64, 2)]),
        min_size=1, max_size=6,
    )

    @given(field_lists)
    def test_offsets_are_disjoint_and_cover(self, field_types):
        struct = StructType("s", [
            ("f%d" % i, t) for i, t in enumerate(field_types)
        ])
        layout = struct.layout()
        # contiguous, non-overlapping, covering the struct exactly
        position = 0
        for name, offset, size in layout:
            assert offset == position
            position += size
        assert position == struct.size()

    @given(field_lists, st.integers(min_value=0, max_value=100))
    def test_field_at_offset_consistent(self, field_types, offset):
        struct = StructType("s", [
            ("f%d" % i, t) for i, t in enumerate(field_types)
        ])
        name = struct.field_at_offset(offset)
        if offset < struct.size():
            assert name is not None
            field_offset = struct.field_offset(name)
            assert field_offset <= offset < field_offset + struct.field_type(
                name).size()
        else:
            assert name is None


class TestMemoryProperties:
    sizes = st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                     max_size=12)

    @given(sizes)
    def test_allocations_disjoint(self, sizes):
        memory = Memory()
        blocks = [memory.allocate(size, MemoryBlock.HEAP) for size in sizes]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert a.end <= b.base or b.end <= a.base

    @given(sizes)
    def test_block_at_finds_every_byte(self, sizes):
        memory = Memory()
        blocks = [memory.allocate(size, MemoryBlock.HEAP) for size in sizes]
        for block in blocks:
            assert memory.block_at(block.base) is block
            assert memory.block_at(block.end - 1) is block

    @given(st.binary(min_size=1, max_size=64))
    def test_write_read_roundtrip(self, data):
        memory = Memory()
        block = memory.allocate(len(data), MemoryBlock.HEAP)
        memory.write_bytes(block.base, data)
        assert memory.read_bytes(block.base, len(data)) == data

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_int_roundtrip_signed(self, value):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.HEAP)
        memory.write_int(block.base, value, 8)
        assert memory.read_int(block.base, 8, signed=True) == value


class TestSchedulerProperties:
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=25)
    def test_random_scheduler_always_picks_runnable(self, seed, count):
        from repro.runtime.scheduler import RandomScheduler

        class Thread:
            def __init__(self, thread_id):
                self.thread_id = thread_id
                self.name = "t%d" % thread_id

        threads = [Thread(i) for i in range(count)]
        scheduler = RandomScheduler(seed)
        for step in range(50):
            assert scheduler.choose(threads, step) in threads

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=20)
    def test_interpreter_deterministic_given_seed(self, seed):
        """Same module + same seed => identical final state."""
        from tests.helpers import build_counter_race, run_to_completion

        module = build_counter_race(iterations=2)
        vm_a = run_to_completion(module, seed=seed)
        vm_b = run_to_completion(module, seed=seed)
        counter_a = vm_a.memory.read_int(vm_a.global_address("counter"), 8)
        counter_b = vm_b.memory.read_int(vm_b.global_address("counter"), 8)
        assert counter_a == counter_b
        assert vm_a.step == vm_b.step


class TestDetectorProperties:
    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_no_false_negatives_on_unlocked_counter_eventually(self, base):
        """Across a handful of seeds the racy pair is always reportable."""
        from repro.detectors import run_tsan
        from tests.helpers import build_counter_race

        module = build_counter_race(iterations=3)
        reports, _ = run_tsan(module, seeds=range(base, base + 4))
        assert len(reports) >= 1

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_no_false_positives_on_locked_counter(self, base):
        from repro.detectors import run_tsan
        from tests.helpers import build_counter_race

        module = build_counter_race(iterations=3, with_lock=True)
        reports, _ = run_tsan(module, seeds=range(base, base + 4))
        assert len(reports) == 0


def build_random_module(ops, n_workers):
    """A random multithreaded module from a hypothesis-drawn op list.

    Each op touches shared globals, a mutex, the heap (malloc/realloc/free)
    or the sleep queue, so random programs cover every scheduler block kind
    and every hot-path memo invalidation point.
    """
    from repro.ir import IRBuilder, Module, verify_module
    from repro.ir.types import I32, ptr

    b = IRBuilder(Module("rand"))
    shared = [b.global_var("g%d" % i, I64, 0) for i in range(4)]
    lock = b.global_var("lock", I64, 0)
    line = [1]

    def nl():
        line[0] += 1
        return line[0]

    b.set_location("rand.c", 1)
    b.begin_function("worker", I32, [("arg", ptr(I8))], source_file="rand.c")
    for kind, idx, val in ops:
        g = shared[idx]
        if kind == "inc":
            b.store(b.add(b.load(g, line=nl()), 1, line=line[0]), g,
                    line=line[0])
        elif kind == "store":
            b.store(val, g, line=nl())
        elif kind == "load":
            b.load(g, line=nl())
        elif kind == "locked_inc":
            guard = b.cast("bitcast", lock, ptr(I8), line=nl())
            b.call("mutex_lock", [guard], line=nl())
            b.store(b.add(b.load(g, line=nl()), 1, line=line[0]), g,
                    line=line[0])
            b.call("mutex_unlock", [guard], line=nl())
        elif kind == "sleep":
            b.call("usleep", [b.i64(1 + idx)], line=nl())
        elif kind == "heap":
            p = b.call("malloc", [b.i64(16)], line=nl())
            tp = b.cast("bitcast", p, ptr(I64), line=nl())
            b.store(b.i64(val), tp, line=line[0])
            q = b.call("realloc", [p, b.i64(32)], line=nl())
            tq = b.cast("bitcast", q, ptr(I64), line=nl())
            b.load(tq, line=line[0])
            b.call("free", [q], line=nl())
    b.ret(b.i32(0), line=nl())
    b.end_function()

    b.begin_function("main", I32, [], source_file="rand.c")
    worker = b.module.get_function("worker")
    tids = [b.call("thread_create", [worker, b.null()], line=nl())
            for _ in range(n_workers)]
    for tid in tids:
        b.call("thread_join", [tid], line=nl())
    b.ret(b.i32(0), line=nl())
    b.end_function()
    verify_module(b.module)
    return b.module


class TestDifferentialExecutionProperties:
    op_lists = st.lists(
        st.tuples(
            st.sampled_from(["inc", "store", "load", "heap", "locked_inc",
                             "sleep"]),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=1, max_size=8,
    )

    @given(op_lists, st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_optimized_matches_reference_on_random_ir(self, ops, workers,
                                                      seed):
        """Reference and optimized execution are observably identical."""
        from repro.runtime.diffcheck import diff_seed
        from repro.spec import ProgramSpec

        module = build_random_module(ops, workers)
        spec = ProgramSpec("rand", lambda: module, max_steps=30_000)
        divergence, reference, optimized = diff_seed(spec, seed)
        assert divergence is None, divergence.describe()
        assert reference.events == optimized.events
        assert reference.faults == optimized.faults
        assert reference.recorded_faults == optimized.recorded_faults


class TestRecordReplayProperties:
    """The replay invariant on arbitrary IR under every scheduler family:
    a log replayed on the same module is bit-identical (fingerprint,
    report set, fault lists) — and a mutated log diverges loudly."""

    op_lists = TestDifferentialExecutionProperties.op_lists

    @staticmethod
    def _schedulers(seed):
        from repro.runtime.scheduler import (
            PCTScheduler, RandomScheduler, RoundRobinScheduler,
        )

        return [RandomScheduler(seed), PCTScheduler(seed=seed, depth=3),
                RoundRobinScheduler(quantum=7)]

    @given(op_lists, st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_replay_is_bit_identical_on_random_ir(self, ops, workers, seed):
        from repro.detectors.report import ReportSet
        from repro.detectors.tsan import TSanDetector
        from repro.runtime.diffcheck import compare_fingerprints
        from repro.runtime.record import record_seed, replay_log
        from tests.owl.test_batch import _fingerprints

        module = build_random_module(ops, workers)
        for scheduler in self._schedulers(seed):
            live = TSanDetector(annotations=None, reports=ReportSet())
            log, _, recorded = record_seed(
                module, seed, max_steps=30_000, scheduler=scheduler,
                fingerprint=True, observers=[live])
            detector = TSanDetector(annotations=None, reports=ReportSet())
            outcome = replay_log(module, log, observers=[detector],
                                 fingerprint=True)
            assert outcome.faithful, outcome.as_dict()
            assert compare_fingerprints(recorded,
                                        outcome.fingerprint) is None
            assert _fingerprints(detector.reports) == \
                _fingerprints(live.reports)
            assert outcome.fingerprint.faults == recorded.faults
            assert outcome.fingerprint.recorded_faults == \
                recorded.recorded_faults

    @given(op_lists, st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_mutated_log_diverges_loudly(self, ops, workers, seed):
        from repro.runtime.record import record_seed, replay_log

        module = build_random_module(ops, workers)
        log, _, _ = record_seed(module, seed, max_steps=30_000)
        assert log.schedule
        # redirect the first quantum to a thread id that never existed:
        # the replay cannot follow it, whatever the program does
        log.schedule[0] = (999, log.schedule[0][1])
        outcome = replay_log(module, log)
        assert outcome.schedule_divergences >= 1
        assert not outcome.faithful
