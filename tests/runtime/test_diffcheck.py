"""Tests for the differential-execution oracle and the hot-path memos.

Two layers: direct unit tests for every memo invalidation point (call, ret,
free, realloc of a described block, cast-typing a block), and end-to-end
oracle runs asserting reference and optimized executions stay bit-identical.
"""

import pytest

from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, StructType, ptr
from repro.runtime.diffcheck import (
    Divergence,
    compare_fingerprints,
    diff_program,
    diff_seed,
    fingerprint_run,
)
from repro.runtime.errors import FaultKind
from repro.runtime.interpreter import VM, reference_execution
from repro.runtime.memory import Memory, MemoryBlock
from repro.runtime.thread import Frame, ThreadContext
from repro.spec import ProgramSpec
from tests.helpers import build_adhoc_sync_module, build_counter_race


def build_two_funcs() -> Module:
    b = IRBuilder(Module("m"))
    b.begin_function("g", I32, [], source_file="m.c")
    b.ret(b.i32(0), line=20)
    b.end_function()
    b.begin_function("f", I32, [], source_file="m.c")
    b.call("g", [], line=10)
    b.ret(b.i32(0), line=11)
    b.end_function()
    verify_module(b.module)
    return b.module


def build_realloc_module() -> Module:
    """malloc -> cast-type -> field store -> realloc -> field store/load.

    Exercises the description memo across its invalidation points: the cast
    types the heap block (field names appear), the realloc frees it and
    copies the payload into a fresh block that is cast-typed again.
    """
    box = StructType("box", [("a", I64), ("b", I64)])
    b = IRBuilder(Module("re"))
    b.begin_function("main", I32, [], source_file="re.c")
    p = b.call("malloc", [b.i64(16)], line=1)
    tp = b.cast("bitcast", p, ptr(box), line=2)
    b.store(b.i64(7), b.field(tp, "a", line=3), line=3)
    q = b.call("realloc", [p, b.i64(32)], line=4)
    tq = b.cast("bitcast", q, ptr(box), line=5)
    b.store(b.i64(9), b.field(tq, "b", line=6), line=6)
    preserved = b.load(b.field(tq, "a", line=7), line=7)
    b.call("free", [q], line=8)
    b.ret(b.cast("trunc", preserved, I32, line=9), line=9)
    b.end_function()
    verify_module(b.module)
    return b.module


def spec_for(name, factory, **kwargs) -> ProgramSpec:
    return ProgramSpec(name, factory, **kwargs)


class TestCallStackMemo:
    def make_thread(self, memoize=True):
        module = build_two_funcs()
        return module, ThreadContext(
            1, "t", module.get_function("f"), memoize_stack=memoize)

    def test_snapshot_names_frames(self):
        _, thread = self.make_thread()
        assert [entry[0] for entry in thread.call_stack()] == ["f"]

    def test_repeated_snapshot_hits_the_memo(self):
        _, thread = self.make_thread()
        first = thread.call_stack()
        assert thread.call_stack() is first

    def test_call_invalidates(self):
        module, thread = self.make_thread()
        before = thread.call_stack()
        thread.push_frame(Frame(module.get_function("g")))
        after = thread.call_stack()
        assert [entry[0] for entry in after] == ["f", "g"]
        assert after != before

    def test_ret_invalidates(self):
        module, thread = self.make_thread()
        thread.push_frame(Frame(module.get_function("g")))
        deep = thread.call_stack()
        thread.pop_frame()
        shallow = thread.call_stack()
        assert [entry[0] for entry in shallow] == ["f"]
        assert shallow != deep

    def test_memo_tracks_top_frame_pc(self):
        _, thread = self.make_thread()
        at_call = thread.call_stack()
        thread.top.index += 1  # f's pc moves from the call to the ret
        at_ret = thread.call_stack()
        assert at_call != at_ret
        assert at_ret[-1][2] == 11

    def test_clear_frames_empties_snapshot(self):
        _, thread = self.make_thread()
        thread.call_stack()
        thread.clear_frames()
        assert thread.call_stack() == ()

    def test_memoized_matches_reference_mode(self):
        module, memoized = self.make_thread(memoize=True)
        _, plain = self.make_thread(memoize=False)
        for thread in (memoized, plain):
            thread.push_frame(Frame(module.get_function("g")))
        assert memoized.call_stack() == plain.call_stack()
        for thread in (memoized, plain):
            thread.pop_frame()
            thread.top.index += 1
        assert memoized.call_stack() == plain.call_stack()


class TestDescribeMemo:
    def typed_block(self):
        memory = Memory()
        box = StructType("box", [("a", I64), ("b", I64)])
        return memory.allocate(16, MemoryBlock.HEAP, name="h",
                               value_type=box), box

    def test_cached_matches_pure(self):
        block, _ = self.typed_block()
        for offset in (0, 4, 8, 15):
            assert block.describe_offset_cached(offset) == \
                block.describe_offset(offset)

    def test_cache_is_per_offset(self):
        block, _ = self.typed_block()
        first = block.describe_offset_cached(8)
        assert block.describe_offset_cached(8) == first
        assert block.describe_offset_cached(0) != first

    def test_cast_typing_invalidates(self):
        memory = Memory()
        block = memory.allocate(16, MemoryBlock.HEAP, name="h")
        assert block.describe_offset_cached(8) == "h+8"
        box = StructType("box", [("a", I64), ("b", I64)])
        # what VM._maybe_type_block does when a cast types the block
        block.value_type = box
        block.fields = box.layout()
        block.invalidate_descriptions()
        assert block.describe_offset_cached(8) == "h.b"


class TestBlockAtMemo:
    def test_repeated_and_alternating_lookups(self):
        memory = Memory()
        a = memory.allocate(8, MemoryBlock.HEAP, name="a")
        c = memory.allocate(8, MemoryBlock.HEAP, name="c")
        assert memory.block_at(a.base) is a
        assert memory.block_at(a.base + 7) is a  # memo hit
        assert memory.block_at(c.base + 4) is c  # memo miss, rebind
        assert memory.block_at(c.base) is c
        assert memory.block_at(a.base) is a

    def test_free_keeps_lookup_correct(self):
        memory = Memory()
        a = memory.allocate(8, MemoryBlock.HEAP, name="a")
        assert memory.block_at(a.base) is a  # primes the memo
        assert memory.free(a.base, 1, 0, ()) is None
        found = memory.block_at(a.base)
        assert found is a and found.freed  # freed blocks stay visible (UAF)


class TestDifferentialOracle:
    def test_counter_race_identical_across_seeds(self):
        spec = spec_for("counter", build_counter_race, max_steps=20_000)
        diff = diff_program(spec, seeds=range(6))
        assert diff.divergences == []
        assert diff.reference_steps == diff.optimized_steps > 0

    def test_adhoc_sync_identical(self):
        spec = spec_for("adhoc", build_adhoc_sync_module, max_steps=20_000)
        assert diff_program(spec, seeds=range(6)).divergences == []

    def test_realloc_of_described_block_identical(self):
        spec = spec_for("re", build_realloc_module, max_steps=5_000)
        divergence, reference, optimized = diff_seed(spec, 0)
        assert divergence is None
        assert reference.reason == optimized.reason == "finished"
        # the realloc'd block's field names resolve through the lazy memo
        variables = [record[9] for record in optimized.events
                     if record[0] == "access" and record[9]]
        assert any(variable.endswith(".a") for variable in variables)
        assert any(variable.endswith(".b") for variable in variables)

    def test_registered_app_identical(self):
        from repro.apps.registry import spec_by_name
        spec = spec_by_name("apache_log")
        assert diff_program(spec, seeds=range(3)).divergences == []

    def test_compare_detects_tampered_event(self):
        spec = spec_for("counter", build_counter_race, max_steps=20_000)
        _, reference, optimized = diff_seed(spec, 1)
        optimized.events[3] = ("tampered",)
        divergence = compare_fingerprints(reference, optimized)
        assert divergence is not None
        assert divergence.field == "events" and divergence.index == 3
        assert "tampered" in divergence.describe()

    def test_compare_detects_missing_tail_event(self):
        spec = spec_for("counter", build_counter_race, max_steps=20_000)
        _, reference, optimized = diff_seed(spec, 2)
        optimized.events.pop()
        divergence = compare_fingerprints(reference, optimized)
        assert divergence is not None
        assert divergence.field == "events"
        assert divergence.index == len(optimized.events)

    def test_compare_detects_fault_divergence(self):
        spec = spec_for("counter", build_counter_race, max_steps=20_000)
        _, reference, optimized = diff_seed(spec, 3)
        optimized.faults.append((FaultKind.BUFFER_OVERFLOW.value, 1, 0, 0,
                                 "injected", ()))
        divergence = compare_fingerprints(reference, optimized)
        assert divergence is not None
        assert divergence.field == "faults"


class TestReferenceMode:
    def test_context_manager_sets_vm_default(self):
        module = build_counter_race()
        with reference_execution():
            assert VM(module).reference is True
        assert VM(module).reference is False

    def test_explicit_flag_wins_over_ambient(self):
        module = build_counter_race()
        with reference_execution():
            assert VM(module, reference=False).reference is False
        assert VM(module, reference=True).reference is True

    def test_reference_vm_disables_memos(self):
        module = build_counter_race()
        vm = VM(module, reference=True)
        thread = vm.start("main")
        assert thread.memoize_stack is False
        assert vm.memory._memoize is False


class TestRunClamp:
    def build_spin(self):
        b = IRBuilder(Module("spin"))
        b.begin_function("main", I32, [], source_file="a.c")
        b.br("spin", line=1)
        b.at("spin")
        b.br("spin", line=2)
        b.end_function()
        verify_module(b.module)
        return b.module

    @pytest.mark.parametrize("reference", [False, True])
    def test_run_max_steps_clamped_to_global_budget(self, reference):
        vm = VM(self.build_spin(), max_steps=100, reference=reference)
        vm.start("main")
        result = vm.run(max_steps=500)
        assert result.reason == "step-limit"
        assert vm.step == 100

    @pytest.mark.parametrize("reference", [False, True])
    def test_resumed_runs_accumulate_to_budget(self, reference):
        vm = VM(self.build_spin(), max_steps=100, reference=reference)
        vm.start("main")
        vm.run(max_steps=40)
        assert vm.step == 40
        vm.run(max_steps=40)
        assert vm.step == 80
        result = vm.run(max_steps=40)  # would reach 120 without the clamp
        assert vm.step == 100
        assert result.reason == "step-limit"
