"""Tests for the metrics JSON schema version and its loader."""

import json

import pytest

from repro.runtime.metrics import (
    SCHEMA_VERSION,
    MetricsSchemaError,
    PipelineMetrics,
    load_metrics,
)


def saved_metrics(tmp_path):
    metrics = PipelineMetrics("demo", jobs=2)
    with metrics.stage("detect", unit="reports") as stage:
        stage.items = 3
    path = str(tmp_path / "metrics_demo.json")
    metrics.save(path)
    return path


class TestMetricsSchema:
    def test_as_dict_declares_current_schema(self):
        assert PipelineMetrics("demo").as_dict()["schema"] == SCHEMA_VERSION

    def test_load_round_trips_saved_file(self, tmp_path):
        path = saved_metrics(tmp_path)
        data = load_metrics(path)
        assert data["program"] == "demo"
        assert data["stages"][0]["name"] == "detect"

    def test_load_rejects_unknown_version(self, tmp_path):
        path = saved_metrics(tmp_path)
        with open(path) as handle:
            data = json.load(handle)
        data["schema"] = SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(MetricsSchemaError, match="unsupported"):
            load_metrics(path)

    def test_load_rejects_missing_schema_field(self, tmp_path):
        path = saved_metrics(tmp_path)
        with open(path) as handle:
            data = json.load(handle)
        del data["schema"]
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(MetricsSchemaError):
            load_metrics(path)
