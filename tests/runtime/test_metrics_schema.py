"""Tests for the metrics JSON schema version and its loader."""

import json

import pytest

from repro.runtime.metrics import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    MetricsSchemaError,
    PipelineMetrics,
    load_metrics,
)


def saved_metrics(tmp_path):
    metrics = PipelineMetrics("demo", jobs=2)
    with metrics.stage("detect", unit="reports") as stage:
        stage.items = 3
    path = str(tmp_path / "metrics_demo.json")
    metrics.save(path)
    return path


class TestMetricsSchema:
    def test_as_dict_declares_current_schema(self):
        assert PipelineMetrics("demo").as_dict()["schema"] == SCHEMA_VERSION

    def test_current_schema_is_nine_and_supports_ancestors(self):
        assert SCHEMA_VERSION == 9
        assert SUPPORTED_SCHEMAS == (1, 2, 3, 4, 5, 6, 7, 8, 9)

    def test_loader_accepts_all_supported_versions(self, tmp_path):
        path = saved_metrics(tmp_path)
        for version in SUPPORTED_SCHEMAS:
            with open(path) as handle:
                data = json.load(handle)
            data["schema"] = version
            with open(path, "w") as handle:
                json.dump(data, handle)
            assert load_metrics(path)["schema"] == version

    def test_explore_block_round_trips(self, tmp_path):
        metrics = PipelineMetrics("demo", jobs=1)
        metrics.explore = {"detector": "tsan", "saturation_wave": 2,
                           "seeds_executed": 12, "waves": []}
        path = str(tmp_path / "metrics_explore.json")
        metrics.save(path)
        data = load_metrics(path)
        assert data["schema"] == SCHEMA_VERSION
        assert data["explore"]["saturation_wave"] == 2

    def test_explore_block_absent_by_default(self, tmp_path):
        data = load_metrics(saved_metrics(tmp_path))
        assert "explore" not in data

    def test_diff_oracle_block_round_trips(self, tmp_path):
        metrics = PipelineMetrics("demo", jobs=1)
        metrics.diff_oracle = {"seeds": 10, "divergences": 0,
                               "reference_steps_per_second": 100000.0,
                               "optimized_steps_per_second": 200000.0,
                               "speedup": 2.0,
                               "report_sets_identical": True,
                               "counters_identical": True}
        path = str(tmp_path / "metrics_diffcheck_demo.json")
        metrics.save(path)
        data = load_metrics(path)
        assert data["schema"] == SCHEMA_VERSION
        assert data["diff_oracle"]["divergences"] == 0
        assert data["diff_oracle"]["speedup"] == 2.0

    def test_diff_oracle_block_absent_by_default(self, tmp_path):
        data = load_metrics(saved_metrics(tmp_path))
        assert "diff_oracle" not in data

    def test_replay_block_round_trips(self, tmp_path):
        metrics = PipelineMetrics("demo", jobs=1)
        metrics.replay = {"logs": 20, "decisions": 61234,
                          "record_dir": "benchmarks/out/records/demo",
                          "replays": 40, "schedule_divergences": 0,
                          "sync_divergences": 0, "thread_divergences": 0,
                          "unfaithful_replays": 0}
        path = str(tmp_path / "metrics_replay_demo.json")
        metrics.save(path)
        data = load_metrics(path)
        assert data["schema"] == SCHEMA_VERSION
        assert data["replay"]["logs"] == 20
        assert data["replay"]["unfaithful_replays"] == 0

    def test_replay_block_absent_by_default(self, tmp_path):
        data = load_metrics(saved_metrics(tmp_path))
        assert "replay" not in data

    def test_repair_block_round_trips(self, tmp_path):
        metrics = PipelineMetrics("demo", jobs=1)
        metrics.repair = {"program": "demo", "original_digest": "ab12",
                          "targets": 4, "candidates": 12, "emitted": 4,
                          "ground_truth": {"spec": "demo_fixed",
                                           "checked": 4, "matched": 4},
                          "per_target": [], "counters": {}}
        path = str(tmp_path / "metrics_repair_demo.json")
        metrics.save(path)
        data = load_metrics(path)
        assert data["schema"] == SCHEMA_VERSION
        assert data["repair"]["emitted"] == 4
        assert data["repair"]["ground_truth"]["matched"] == 4

    def test_repair_block_absent_by_default(self, tmp_path):
        data = load_metrics(saved_metrics(tmp_path))
        assert "repair" not in data

    def test_telemetry_block_round_trips(self, tmp_path):
        metrics = PipelineMetrics("demo", jobs=1)
        metrics.telemetry = {
            "counters": {"pipeline.raw_reports": 16, "cache.detect.hits": 3},
            "gauges": {"spans.records": 412},
            "histograms": {"vm.steps_per_seed": {
                "bounds": [100, 1000], "counts": [0, 2, 1],
                "sum": 4200, "count": 3}},
            "profile": {"interval": 251, "samples": 70,
                        "observer_samples": 23,
                        "top_functions": [["worker", 41]],
                        "top_opcodes": [["Store", 18]]},
        }
        path = str(tmp_path / "metrics_telemetry_demo.json")
        metrics.save(path)
        data = load_metrics(path)
        assert data["schema"] == SCHEMA_VERSION
        assert data["telemetry"]["counters"]["pipeline.raw_reports"] == 16
        assert data["telemetry"]["profile"]["interval"] == 251

    def test_telemetry_block_absent_by_default(self, tmp_path):
        data = load_metrics(saved_metrics(tmp_path))
        assert "telemetry" not in data

    def test_load_round_trips_saved_file(self, tmp_path):
        path = saved_metrics(tmp_path)
        data = load_metrics(path)
        assert data["program"] == "demo"
        assert data["stages"][0]["name"] == "detect"

    def test_load_rejects_unknown_version(self, tmp_path):
        path = saved_metrics(tmp_path)
        with open(path) as handle:
            data = json.load(handle)
        data["schema"] = SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(MetricsSchemaError, match="unsupported"):
            load_metrics(path)

    def test_unknown_version_error_names_schema_and_supported_list(
            self, tmp_path):
        """The rejection message must carry everything needed to act on it:
        the file, the offending version, and every supported version."""
        path = saved_metrics(tmp_path)
        with open(path) as handle:
            data = json.load(handle)
        data["schema"] = 99
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(MetricsSchemaError) as excinfo:
            load_metrics(path)
        message = str(excinfo.value)
        assert path in message
        assert "99" in message
        for version in SUPPORTED_SCHEMAS:
            assert str(version) in message

    def test_load_rejects_missing_schema_field(self, tmp_path):
        path = saved_metrics(tmp_path)
        with open(path) as handle:
            data = json.load(handle)
        del data["schema"]
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(MetricsSchemaError):
            load_metrics(path)
