"""Fusion soundness: run_length contracts, fused/stepwise parity, fixes.

Four layers:

- unit tests for the two VM bugfixes (``_handle_idle`` clamping the sleeper
  fast-forward to the step budget; ``step_thread`` resetting ``blocked_arg``
  together with ``blocked_kind``),
- unit tests for every scheduler's ``run_length`` no-preempt contract,
  including the RandomScheduler's pending-draw and entropy-parity semantics,
- unit tests for :class:`repro.runtime.fuse.FuseEngine` (hotness, plan
  caching, invalidation, attach signature validation, counters), and
- hypothesis differential tests pinning ``_run_fast_loop`` ≡
  ``_run_reference_loop`` ≡ fused execution across blocked/sleeper/halted
  transitions and fused-block boundaries (fault bailout mid-run, memo
  invalidation between runs, ``run_length`` shrinking at change points).
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, ptr
from repro.runtime.diffcheck import TraceRecorder, _normalize_fault
from repro.runtime.errors import FaultKind
from repro.runtime.fuse import FuseEngine
from repro.runtime.interpreter import VM, ExecutionResult
from repro.runtime.scheduler import (
    PCTScheduler,
    RandomScheduler,
    RecordingScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)
from tests.helpers import build_adhoc_sync_module, build_counter_race


# ----------------------------------------------------------------------
# workload modules

def build_sleep_forever(delay: int = 1_000_000) -> Module:
    """main usleeps far beyond any step budget."""
    b = IRBuilder(Module("sleeper"))
    b.begin_function("main", I32, [], source_file="s.c")
    b.call("usleep", [delay], line=1)
    b.ret(b.i32(0), line=2)
    b.end_function()
    verify_module(b.module)
    return b.module


def build_sleeper_contention(iterations: int = 3) -> Module:
    """Two workers taking a mutex and sleeping while holding it.

    Exercises every transition the fast loop optimizes: mutex blocking
    (parsed block reason), sleeping (wake_step), unblock ordering, plus
    straight-line fusible runs between the calls.
    """
    module = Module("contention")
    b = IRBuilder(module)
    counter = b.global_var("counter", I64, 0)
    lock = b.global_var("lock", I64, 0)
    b.set_location("c.c", 1)
    b.begin_function("worker", I32, [("arg", ptr(I8))], source_file="c.c")
    i = b.local(I64, "i", 0, line=10)
    b.br("cond", line=10)
    b.at("cond")
    iv = b.load(i, line=11)
    more = b.icmp("slt", iv, iterations, line=11)
    b.cond_br(more, "body", "done", line=11)
    b.at("body")
    b.call("mutex_lock", [b.cast("bitcast", lock, ptr(I8), line=12)], line=12)
    value = b.load(counter, line=13)
    b.store(b.add(value, 1, line=13), counter, line=13)
    b.call("usleep", [7], line=14)
    b.call("mutex_unlock", [b.cast("bitcast", lock, ptr(I8), line=15)],
           line=15)
    b.store(b.add(iv, 1, line=16), i, line=16)
    b.br("cond", line=16)
    b.at("done")
    b.ret(b.i32(0), line=17)
    b.end_function()
    b.begin_function("main", I32, [], source_file="c.c")
    worker = module.get_function("worker")
    t1 = b.call("thread_create", [worker, b.null()], line=20)
    t2 = b.call("thread_create", [worker, b.null()], line=21)
    b.call("thread_join", [t1], line=22)
    b.call("thread_join", [t2], line=23)
    b.ret(b.i32(0), line=24)
    b.end_function()
    verify_module(module)
    return module


def build_divider(start: int = 3) -> Module:
    """A fusible loop that divides by a decrementing global.

    The loop body is pure load/arith/store — after two iterations the
    fuse engine compiles it — and on the iteration where the divisor
    reaches zero the sdiv faults *mid fused run*, exercising the bailout
    path (fault recorded at the exact step, observers notified once).
    """
    module = Module("divider")
    b = IRBuilder(module)
    divisor = b.global_var("divisor", I64, start)
    out = b.global_var("out", I64, 0)
    b.set_location("d.c", 1)
    b.begin_function("main", I32, [], source_file="d.c")
    b.br("cond", line=9)
    b.at("cond")
    d = b.load(divisor, line=10)
    q = b.binop("sdiv", b.i64(100), d, line=11)
    o = b.load(out, line=12)
    b.store(b.add(o, q, line=12), out, line=12)
    b.store(b.sub(d, 1, line=13), divisor, line=13)
    b.br("cond", line=14)
    b.end_function()
    verify_module(module)
    return module


MODULE_BUILDERS = {
    "counter_race": lambda: build_counter_race(iterations=4),
    "counter_locked": lambda: build_counter_race(iterations=3,
                                                 with_lock=True),
    "adhoc": build_adhoc_sync_module,
    "contention": build_sleeper_contention,
}


def make_scheduler(kind: str, seed: int):
    if kind == "random":
        return RandomScheduler(seed)
    if kind == "round_robin":
        return RoundRobinScheduler(quantum=1 + seed % 7)
    return PCTScheduler(seed=seed, depth=3, expected_steps=500)


def run_fingerprint(module: Module, scheduler, reference: bool = False,
                    fuse=False, max_steps: int = 50_000):
    """Everything observable about one run, in comparable form."""
    vm = VM(module, scheduler=scheduler, max_steps=max_steps,
            reference=reference, fuse=fuse)
    recorder = TraceRecorder()
    vm.add_observer(recorder)
    vm.start("main")
    result = vm.run()
    return {
        "events": recorder.records,
        "faults": [_normalize_fault(f) for f in vm.faults],
        "recorded": [_normalize_fault(f) for f in vm.memory.recorded_faults],
        "reason": result.reason,
        "steps": result.steps,
        "per_thread": {t.thread_id: t.steps_executed
                       for t in vm.threads.values()},
    }


# ----------------------------------------------------------------------
# bugfix 1: _handle_idle sleeper fast-forward clamped to the budget

class TestHandleIdleClamp:
    @pytest.mark.parametrize("reference", [False, True])
    def test_sleep_beyond_budget_parks_at_limit(self, reference):
        vm = VM(build_sleep_forever(), scheduler=RoundRobinScheduler(),
                max_steps=25, reference=reference)
        vm.start("main")
        result = vm.run()
        assert result.reason == ExecutionResult.STEP_LIMIT
        # the clamp: the clock parks exactly at the budget instead of
        # jumping to the wake step (step 1 + 1_000_000)
        assert vm.step == 25

    @pytest.mark.parametrize("reference", [False, True])
    def test_resumed_run_never_overshoots_global_budget(self, reference):
        vm = VM(build_sleep_forever(delay=100), scheduler=RoundRobinScheduler(),
                max_steps=40, reference=reference)
        vm.start("main")
        first = vm.run(max_steps=10)
        assert first.reason == ExecutionResult.STEP_LIMIT
        assert vm.step == 10
        second = vm.run()  # up to the global budget
        assert second.reason == ExecutionResult.STEP_LIMIT
        assert vm.step == 40

    def test_both_loops_agree_on_short_sleep(self):
        runs = {}
        for reference in (False, True):
            vm = VM(build_sleep_forever(delay=30),
                    scheduler=RoundRobinScheduler(), max_steps=500,
                    reference=reference)
            vm.start("main")
            result = vm.run()
            runs[reference] = (result.reason, result.steps, vm.step)
        assert runs[False] == runs[True]


# ----------------------------------------------------------------------
# bugfix 2: blocked_arg reset together with blocked_kind

class TestBlockedArgReset:
    def test_unparsed_reason_clears_stale_mutex_fields(self):
        vm = VM(build_sleep_forever(delay=50),
                scheduler=RoundRobinScheduler(), max_steps=1000)
        thread = vm.start("main")
        # Simulate a thread that previously blocked on a mutex: the next
        # block (usleep — an unparsed reason) must not keep these.
        thread.blocked_kind = "mutex"
        thread.blocked_arg = 0xDEAD
        vm.step_thread(thread)  # executes the usleep call -> Block
        assert thread.blocked_on == "usleep"
        assert thread.wake_step is not None
        assert thread.blocked_kind is None
        assert thread.blocked_arg == 0

    def test_fast_loop_never_misreads_stale_mutex_address(self):
        # End to end: workers alternate mutex blocks and sleeps; if the
        # fast loop ever treated a sleeping thread as a mutex waiter on a
        # stale address it would unblock early and diverge from the
        # reference loop below.
        module = build_sleeper_contention()
        baseline = run_fingerprint(module, RandomScheduler(3),
                                   reference=True)
        fast = run_fingerprint(module, RandomScheduler(3))
        assert fast == baseline


# ----------------------------------------------------------------------
# run_length contracts

def _threads(n: int):
    return [SimpleNamespace(thread_id=i + 1, name="t%d" % (i + 1))
            for i in range(n)]


class TestRunLengthContract:
    """run_length(thread, step, k) promises the next k-1 chooses return
    the same thread and commits internal state exactly as they would."""

    @given(st.sampled_from(["random", "round_robin", "pct"]),
           st.integers(0, 1000), st.integers(1, 3),
           st.lists(st.integers(2, 9), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_fused_decisions_equal_stepwise(self, kind, seed, n, windows):
        runnable = _threads(n)
        stepwise = make_scheduler(kind, seed)
        fused = make_scheduler(kind, seed)
        # fused driver: after each choose, ask for a run and skip the
        # committed decisions
        expanded = []
        step = 0
        for max_len in windows:
            chosen = fused.choose(runnable, step)
            length = fused.run_length(chosen, step, max_len)
            assert 1 <= length <= max_len
            expanded.extend([chosen.thread_id] * length)
            step += length
        # stepwise driver: one choose per decision
        reference = [stepwise.choose(runnable, s).thread_id
                     for s in range(step)]
        assert expanded == reference

    def test_round_robin_commits_quantum(self):
        scheduler = RoundRobinScheduler(quantum=5)
        runnable = _threads(2)
        first = scheduler.choose(runnable, 0)
        assert scheduler.run_length(first, 0, 3) == 3
        # 2 of the remaining 4 quantum steps were committed
        assert scheduler._remaining == 2
        assert scheduler.choose(runnable, 3) is first
        assert scheduler.choose(runnable, 4) is first
        # quantum exhausted: the rotation moves on
        assert scheduler.choose(runnable, 5) is not first

    def test_round_robin_caps_at_window(self):
        scheduler = RoundRobinScheduler(quantum=50)
        runnable = _threads(2)
        chosen = scheduler.choose(runnable, 0)
        assert scheduler.run_length(chosen, 0, 4) == 4

    @given(st.integers(0, 10_000), st.integers(2, 3),
           st.lists(st.integers(2, 9), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_random_entropy_parity(self, seed, n, windows):
        """After the same number of decisions, the rng streams agree —
        the schedule stays bit-identical past any fused region."""
        runnable = _threads(n)
        stepwise = RandomScheduler(seed)
        fused = RandomScheduler(seed)
        decisions = 0
        for max_len in windows:
            chosen = fused.choose(runnable, decisions)
            decisions += fused.run_length(chosen, decisions, max_len)
        for s in range(decisions):
            stepwise.choose(runnable, s)
        # drain any pending draw the way the VM would (the next choose)
        if fused._pending is not None:
            assert fused.choose(runnable, decisions) is not None
            stepwise.choose(runnable, decisions)
        assert fused._rng.getstate() == stepwise._rng.getstate()

    def test_random_pending_draw_served_verbatim(self):
        runnable = _threads(2)
        scheduler = RandomScheduler(7)
        chosen = scheduler.choose(runnable, 0)
        length = scheduler.run_length(chosen, 0, 50)
        if scheduler._pending is None:
            pytest.skip("lookahead ran the full window for this seed")
        pending = scheduler._pending
        after = scheduler.choose(runnable, length)
        assert after is runnable[pending]

    def test_random_pending_detects_contract_violation(self):
        runnable = _threads(2)
        scheduler = RandomScheduler(7)
        chosen = scheduler.choose(runnable, 0)
        scheduler.run_length(chosen, 0, 50)
        if scheduler._pending is None:
            pytest.skip("lookahead ran the full window for this seed")
        with pytest.raises(RuntimeError, match="no-preempt contract"):
            scheduler.choose(_threads(3), 1)

    def test_random_skips_lookahead_when_crowded(self):
        runnable = _threads(4)
        scheduler = RandomScheduler(0)
        chosen = scheduler.choose(runnable, 0)
        state = scheduler._rng.getstate()
        assert scheduler.run_length(chosen, 0, 50) == 1
        assert scheduler._rng.getstate() == state  # committed nothing

    def test_random_single_thread_consumes_entropy(self):
        runnable = _threads(1)
        fused = RandomScheduler(11)
        stepwise = RandomScheduler(11)
        chosen = fused.choose(runnable, 0)
        assert fused.run_length(chosen, 0, 6) == 6
        for s in range(6):
            stepwise.choose(runnable, s)
        assert fused._rng.getstate() == stepwise._rng.getstate()

    def test_pct_stops_at_change_point_without_mutation(self):
        scheduler = PCTScheduler(seed=5, depth=3, expected_steps=100)
        runnable = _threads(2)
        chosen = scheduler.choose(runnable, 0)
        point = min(p for p in scheduler.change_points if p > 0)
        priorities = dict(scheduler._priorities)
        length = scheduler.run_length(chosen, 0, point + 40)
        assert length == point  # steps 1..point-1 are safe, point is not
        assert scheduler._priorities == priorities

    def test_wrapper_schedulers_refuse_fusion(self):
        runnable = _threads(2)
        for scheduler in (
            ScriptedScheduler([(1, 5)]),
            RecordingScheduler(RandomScheduler(0)),
            ReplayScheduler([1, 1, 2]),
        ):
            chosen = scheduler.choose(runnable, 0)
            assert scheduler.run_length(chosen, 0, 50) == 1


# ----------------------------------------------------------------------
# FuseEngine

class TestFuseEngine:
    def _vm(self, module=None, fuse=True):
        vm = VM(module or build_counter_race(iterations=4),
                scheduler=RoundRobinScheduler(), max_steps=10_000, fuse=fuse)
        return vm

    def test_vm_attaches_engine(self):
        vm = self._vm()
        assert isinstance(vm.fuse_engine, FuseEngine)

    def test_reference_mode_disables_fusion(self):
        vm = VM(build_counter_race(), scheduler=RoundRobinScheduler(),
                max_steps=10_000, reference=True, fuse=True)
        assert vm.fuse_engine is None

    def test_sites_warm_before_compiling(self):
        vm = self._vm(build_divider())
        engine = vm.fuse_engine
        thread = vm.start("main")  # entry block: unconditional br -> loop
        assert engine.plan_for(thread) is None  # first sight: cold
        plan = engine.plan_for(thread)  # second sight: compiled
        assert plan is not None and plan.length >= 2
        assert engine.compiled == 1
        assert engine.plan_for(thread) is plan  # cached

    def test_unfusible_site_cached_as_none(self):
        # counter_race main starts with thread_create calls: never fusible
        vm = self._vm()
        engine = vm.fuse_engine
        thread = vm.start("main")
        engine.plan_for(thread)
        engine.plan_for(thread)
        key = (thread.top.block, thread.top.index)
        assert engine._plans[key] is None
        assert engine.compiled == 0

    def test_invalidate_drops_plans_and_counts(self):
        vm = self._vm()
        engine = vm.fuse_engine
        vm.start("main")
        vm.run()
        assert engine.compiled > 0
        engine.invalidate()
        assert engine._plans == {} and engine._heat == {}
        assert engine.invalidations == 1

    def test_attach_foreign_layout_invalidates(self):
        engine = FuseEngine()
        self._vm(build_counter_race(iterations=4), fuse=engine)
        # a module with different globals -> different address layout
        self._vm(build_sleeper_contention(), fuse=engine)
        assert engine.invalidations == 1

    def test_shared_engine_amortizes_across_vms(self):
        module = build_counter_race(iterations=4)
        engine = FuseEngine()
        for _ in range(2):
            vm = VM(module, scheduler=RoundRobinScheduler(),
                    max_steps=10_000, fuse=engine)
            vm.start("main")
            vm.run()
        assert engine.invalidations == 0
        first_sweep_compiles = engine.compiled
        vm = VM(module, scheduler=RoundRobinScheduler(), max_steps=10_000,
                fuse=engine)
        vm.start("main")
        vm.run()
        assert engine.compiled == first_sweep_compiles  # all plans reused

    def test_counters_shape(self):
        vm = self._vm()
        vm.start("main")
        vm.run()
        counters = vm.fuse_engine.counters()
        assert set(counters) == {"compiled", "fused_runs", "fused_steps",
                                 "bailouts", "invalidations"}
        assert counters["fused_steps"] >= counters["fused_runs"] >= 1


# ----------------------------------------------------------------------
# differential: fast loop ≡ reference loop ≡ fused execution

class TestDifferentialParity:
    @given(st.sampled_from(sorted(MODULE_BUILDERS)),
           st.sampled_from(["random", "round_robin", "pct"]),
           st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_three_way_fingerprint_parity(self, name, kind, seed):
        module = MODULE_BUILDERS[name]()
        reference = run_fingerprint(module, make_scheduler(kind, seed),
                                    reference=True)
        fast = run_fingerprint(module, make_scheduler(kind, seed))
        fused = run_fingerprint(module, make_scheduler(kind, seed),
                                fuse=True)
        assert fast == reference
        assert fused == reference

    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_scheduler_rng_state_matches_after_fused_run(self, seed):
        module = build_counter_race(iterations=4)
        stepwise_scheduler = RandomScheduler(seed)
        fused_scheduler = RandomScheduler(seed)
        stepwise = run_fingerprint(module, stepwise_scheduler)
        fused = run_fingerprint(module, fused_scheduler, fuse=True)
        assert fused == stepwise
        # the rng consumed exactly the same entropy: any continuation
        # (e.g. the verifier reusing the scheduler) stays identical
        assert (fused_scheduler._rng.getstate()
                == stepwise_scheduler._rng.getstate())

    @given(st.integers(0, 200), st.integers(5, 60))
    @settings(max_examples=20, deadline=None)
    def test_step_limit_boundary_identical(self, seed, limit):
        """run_length windows clamp at the budget: a fused run never
        overshoots the limit the stepwise run stops at."""
        module = build_counter_race(iterations=50)
        stepwise = run_fingerprint(module, RandomScheduler(seed),
                                   max_steps=limit)
        fused = run_fingerprint(module, RandomScheduler(seed), fuse=True,
                                max_steps=limit)
        assert fused == stepwise
        assert fused["steps"] <= limit


class TestFusedBoundaries:
    def test_fault_bails_out_mid_run(self):
        module = build_divider(start=3)
        stepwise = run_fingerprint(module, RoundRobinScheduler())
        engine = FuseEngine()
        fused = run_fingerprint(module, RoundRobinScheduler(), fuse=engine)
        assert fused == stepwise
        assert stepwise["reason"] == ExecutionResult.FAULT
        assert stepwise["faults"][0][0] == FaultKind.DIVISION_BY_ZERO.value
        assert engine.bailouts == 1
        assert engine.fused_runs >= 1

    def test_invalidation_between_runs_recompiles_identically(self):
        module = build_counter_race(iterations=4)
        engine = FuseEngine()
        first = run_fingerprint(module, RandomScheduler(5), fuse=engine)
        engine.invalidate()
        second = run_fingerprint(module, RandomScheduler(5), fuse=engine)
        assert first == second
        assert engine.invalidations == 1
        assert engine.compiled >= 2  # recompiled after the flush

    def test_sleeper_wakeup_shrinks_the_window(self):
        # a thread sleeping mid-run clamps max_len to its wake step; the
        # fused sweep must wake it at exactly the same step
        module = build_sleeper_contention()
        for seed in range(5):
            stepwise = run_fingerprint(module, RoundRobinScheduler())
            fused = run_fingerprint(module, RoundRobinScheduler(),
                                    fuse=True)
            assert fused == stepwise

    def test_debugger_disables_fusion(self):
        from repro.ir.instructions import Load
        from repro.runtime.debugger import Debugger

        module = build_counter_race(iterations=4)
        vm = VM(module, scheduler=RoundRobinScheduler(), max_steps=10_000,
                fuse=True)
        debugger = Debugger(vm)
        worker = module.get_function("worker")
        load = next(instruction for block in worker.blocks
                    for instruction in block.instructions
                    if isinstance(instruction, Load))
        debugger.add_breakpoint(load)
        vm.start("main")
        result = vm.run()
        assert result.reason == ExecutionResult.BREAKPOINT
        assert vm.fuse_engine.fused_runs == 0
