"""Tests for schedulers and the thread-specific-breakpoint debugger."""

import pytest

from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, ptr
from repro.runtime import (
    Breakpoint,
    Debugger,
    ExecutionResult,
    PCTScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    VM,
)
from repro.runtime.thread import ThreadState
from tests.helpers import build_counter_race


class _FakeThread:
    def __init__(self, thread_id, name="t"):
        self.thread_id = thread_id
        self.name = name


class TestRoundRobin:
    def test_quantum_switching(self):
        scheduler = RoundRobinScheduler(quantum=2)
        threads = [_FakeThread(1), _FakeThread(2)]
        picks = [scheduler.choose(threads, step).thread_id for step in range(6)]
        assert picks == [1, 1, 2, 2, 1, 1]

    def test_skips_missing_thread(self):
        scheduler = RoundRobinScheduler(quantum=1)
        threads = [_FakeThread(1), _FakeThread(2)]
        scheduler.choose(threads, 0)
        picks = [scheduler.choose([_FakeThread(2)], s).thread_id for s in (1, 2)]
        assert picks == [2, 2]

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)

    def test_rotation_continues_past_blocked_thread(self):
        # When the current thread blocks, the rotation must continue from
        # its id, not restart at the lowest one.
        scheduler = RoundRobinScheduler(quantum=1)
        threads = [_FakeThread(1), _FakeThread(2), _FakeThread(3)]
        assert scheduler.choose(threads, 0).thread_id == 1
        assert scheduler.choose(threads, 1).thread_id == 2
        # thread 2 blocks; the next pick must be 3, not back to 1
        assert scheduler.choose([threads[0], threads[2]], 2).thread_id == 3

    def test_no_starvation_with_alternating_runnable_sets(self):
        # A low-id thread that keeps blocking and unblocking must not starve
        # the highest-id thread: runnable alternates {1,3} / {2,3}, so a
        # rotation restarting at the lowest id would pick 1,2,1,2,... forever.
        scheduler = RoundRobinScheduler(quantum=1)
        one, two, three = _FakeThread(1), _FakeThread(2), _FakeThread(3)
        picks = []
        for step in range(12):
            runnable = [one, three] if step % 2 == 0 else [two, three]
            picks.append(scheduler.choose(runnable, step).thread_id)
        assert 3 in picks


class TestRandom:
    def test_deterministic_per_seed(self):
        threads = [_FakeThread(i) for i in range(4)]
        a = RandomScheduler(7)
        b = RandomScheduler(7)
        seq_a = [a.choose(threads, s).thread_id for s in range(50)]
        seq_b = [b.choose(threads, s).thread_id for s in range(50)]
        assert seq_a == seq_b

    def test_different_seeds_differ(self):
        threads = [_FakeThread(i) for i in range(4)]
        seq = lambda seed: [
            RandomScheduler(seed).choose(threads, s).thread_id
            for s in range(30)
        ]
        assert seq(1) != seq(2)

    def test_reset_restores_sequence(self):
        threads = [_FakeThread(i) for i in range(3)]
        scheduler = RandomScheduler(5)
        first = [scheduler.choose(threads, s).thread_id for s in range(20)]
        scheduler.reset()
        second = [scheduler.choose(threads, s).thread_id for s in range(20)]
        assert first == second


class TestPCT:
    def test_highest_priority_wins_consistently(self):
        threads = [_FakeThread(i) for i in range(3)]
        scheduler = PCTScheduler(seed=3, depth=1)
        picks = {scheduler.choose(threads, s).thread_id for s in range(10)}
        assert len(picks) == 1  # no change points with depth=1

    def test_change_points_demote(self):
        threads = [_FakeThread(i) for i in range(3)]
        scheduler = PCTScheduler(seed=3, depth=4, expected_steps=20)
        picks = [scheduler.choose(threads, s).thread_id for s in range(20)]
        assert len(set(picks)) >= 2  # priority changes switch threads

    def test_exactly_depth_minus_one_distinct_change_points(self):
        # PCT's probability guarantee needs d-1 *distinct* change points;
        # with a small step population, colliding draws are likely for many
        # seeds unless the scheduler redraws them.
        for seed in range(200):
            scheduler = PCTScheduler(seed=seed, depth=5, expected_steps=10)
            assert len(scheduler.change_points) == 4, "seed %d" % seed
            assert all(0 <= p < 10 for p in scheduler.change_points)

    def test_change_points_clamped_to_step_population(self):
        scheduler = PCTScheduler(seed=1, depth=50, expected_steps=10)
        assert len(scheduler.change_points) == 10  # can't exceed the steps

    def test_depth_one_has_no_change_points(self):
        scheduler = PCTScheduler(seed=1, depth=1, expected_steps=10)
        assert scheduler.change_points == frozenset()

    def test_reset_redraws_the_same_points(self):
        scheduler = PCTScheduler(seed=11, depth=6, expected_steps=100)
        first = scheduler.change_points
        scheduler.reset()
        assert scheduler.change_points == first

    def test_initial_priorities_are_distinct(self):
        # PCT's guarantee needs distinct per-thread priorities: a colliding
        # draw would leave the tie to runnable-list order.  Shrink the draw
        # space so collisions are near-certain without the redraw loop.
        for seed in range(50):
            scheduler = PCTScheduler(seed=seed, depth=1)
            scheduler._next_priority = 5
            threads = [_FakeThread(i) for i in range(4)]
            priorities = [scheduler._priority(t) for t in threads]
            assert len(set(priorities)) == 4, "seed %d" % seed

    def test_priorities_stable_across_calls(self):
        scheduler = PCTScheduler(seed=7, depth=1)
        thread = _FakeThread(3)
        assert scheduler._priority(thread) == scheduler._priority(thread)


class TestScripted:
    def test_follows_script(self):
        threads = [_FakeThread(1, "a"), _FakeThread(2, "b")]
        scheduler = ScriptedScheduler([("b", 2), ("a", 1)])
        picks = [scheduler.choose(threads, s).thread_id for s in range(3)]
        assert picks == [2, 2, 1]

    def test_fallback_after_script(self):
        threads = [_FakeThread(1, "a"), _FakeThread(2, "b")]
        scheduler = ScriptedScheduler([("a", 1)],
                                      fallback=RoundRobinScheduler(quantum=1))
        scheduler.choose(threads, 0)
        pick = scheduler.choose(threads, 1)
        assert pick.thread_id in (1, 2)

    def test_waits_on_absent_thread_by_running_others(self):
        threads = [_FakeThread(2, "b")]
        scheduler = ScriptedScheduler([("a", 5)])
        assert scheduler.choose(threads, 0).thread_id == 2

    def test_dead_scripted_thread_skips_segment_after_wait_limit(self):
        # Thread "a" never becomes runnable (it exited for good): after
        # wait_limit waits its segment is abandoned — and recorded — and
        # the script moves on instead of spinning forever.
        threads = [_FakeThread(2, "b")]
        scheduler = ScriptedScheduler([("a", 5), ("b", 2)], wait_limit=3)
        picks = [scheduler.choose(threads, s).thread_id for s in range(5)]
        assert picks == [2] * 5
        assert scheduler.skipped_segments == [(0, "a", 5)]
        # the "b" segment ran normally once "a" was skipped
        assert scheduler._segment >= 1

    def test_wait_counter_resets_when_target_reappears(self):
        a, b = _FakeThread(1, "a"), _FakeThread(2, "b")
        scheduler = ScriptedScheduler([("a", 3)], wait_limit=2)
        scheduler.choose([b], 0)          # wait 1
        scheduler.choose([a, b], 1)       # target back: counter resets
        scheduler.choose([b], 2)          # wait 1 again, not 2
        assert scheduler.skipped_segments == []

    def test_invalid_wait_limit(self):
        with pytest.raises(ValueError):
            ScriptedScheduler([("a", 1)], wait_limit=0)

    def test_reset_clears_skip_state(self):
        threads = [_FakeThread(2, "b")]
        scheduler = ScriptedScheduler([("a", 5)], wait_limit=1)
        scheduler.choose(threads, 0)
        assert scheduler.skipped_segments
        scheduler.reset()
        assert scheduler.skipped_segments == []
        assert scheduler._segment == 0


class _CreationTrackingScheduler(RoundRobinScheduler):
    """A stateful fallback that must learn about every thread creation."""

    def __init__(self):
        super().__init__(quantum=1)
        self.created = []

    def on_thread_created(self, thread):
        self.created.append(thread.thread_id)


class TestFallbackThreadCreation:
    """Wrapper schedulers must forward thread creation to their fallback.

    A fallback that keys state on thread ids (priorities, per-thread
    quanta) would otherwise take over after the script/trace ends without
    ever having seen the threads it now schedules.
    """

    def test_scripted_forwards_to_fallback(self):
        fallback = _CreationTrackingScheduler()
        scheduler = ScriptedScheduler([("a", 1)], fallback=fallback)
        scheduler.on_thread_created(_FakeThread(4, "a"))
        scheduler.on_thread_created(_FakeThread(7, "b"))
        assert fallback.created == [4, 7]

    def test_replay_forwards_to_fallback(self):
        from repro.runtime.scheduler import ReplayScheduler

        fallback = _CreationTrackingScheduler()
        scheduler = ReplayScheduler([1, 1, 2], fallback=fallback)
        scheduler.on_thread_created(_FakeThread(2))
        assert fallback.created == [2]

    def test_replay_fallback_sees_threads_spawned_mid_trace(self):
        """End to end: threads created while the trace is still replaying
        are visible to the fallback that finishes the run."""
        from repro.runtime.scheduler import (
            RecordingScheduler, ReplayScheduler,
        )

        module = build_counter_race(iterations=3)
        recorder = RecordingScheduler(RandomScheduler(2))
        vm = VM(module, scheduler=recorder)
        vm.start("main")
        vm.run()

        fallback = _CreationTrackingScheduler()
        # replay only half the trace; the fallback finishes the run and
        # must already know every spawned thread
        replayer = ReplayScheduler(recorder.trace[:len(recorder.trace) // 2],
                                   fallback=fallback)
        vm2 = VM(module, scheduler=replayer)
        vm2.start("main")
        result = vm2.run()
        assert result.reason == "finished"
        assert len(fallback.created) >= 3  # main + two workers


def _debug_session():
    module = build_counter_race(iterations=3)
    vm = VM(module, scheduler=RandomScheduler(1))
    debugger = Debugger(vm)
    load = module.find_instructions(filename="counter.c", line=13,
                                    opcode="load")[0]
    store = module.find_instructions(filename="counter.c", line=13,
                                     opcode="store")[0]
    return module, vm, debugger, load, store


class TestDebugger:
    def test_breakpoint_halts_thread(self):
        module, vm, debugger, load, _ = _debug_session()
        debugger.add_breakpoint(load)
        vm.start("main")
        result = vm.run()
        assert result.reason == ExecutionResult.BREAKPOINT
        halted = debugger.halted_threads()
        assert len(halted) == 1
        assert halted[0].current_instruction() is load

    def test_other_threads_keep_running(self):
        module, vm, debugger, load, _ = _debug_session()
        debugger.add_breakpoint(load)
        vm.start("main")
        vm.run()
        first = debugger.halted_threads()[0]
        result = vm.run()  # the second worker reaches the same breakpoint
        assert result.reason == ExecutionResult.BREAKPOINT
        assert len(debugger.halted_threads()) == 2
        assert first in debugger.halted_threads()

    def test_thread_filter(self):
        module, vm, debugger, load, _ = _debug_session()
        debugger.add_breakpoint(load, thread_filter=2)
        vm.start("main")
        result = vm.run()
        if result.reason == ExecutionResult.BREAKPOINT:
            assert debugger.halted_threads()[0].thread_id == 2

    def test_resume_steps_past(self):
        module, vm, debugger, load, _ = _debug_session()
        debugger.add_breakpoint(load)
        vm.start("main")
        vm.run()
        thread = debugger.halted_threads()[0]
        debugger.resume(thread, step_past=True)
        assert thread.state == ThreadState.RUNNABLE
        result = vm.run()  # hits the breakpoint again on the next iteration
        assert result.reason in (ExecutionResult.BREAKPOINT,
                                 ExecutionResult.FINISHED)

    def test_pending_access_reports_address_and_value(self):
        module, vm, debugger, load, store = _debug_session()
        debugger.add_breakpoint(store)
        vm.start("main")
        vm.run()
        thread = debugger.halted_threads()[0]
        pending = debugger.pending_access(thread)
        assert pending is not None
        assert pending.is_write
        assert pending.address == vm.global_address("counter")
        assert pending.value == 1  # first increment writes 1

    def test_release_one_resolves_livelock(self):
        module, vm, debugger, load, store = _debug_session()
        debugger.add_breakpoint(load)
        debugger.add_breakpoint(store)
        vm.start("main")
        # run until all progress requires halted threads
        for _ in range(50):
            result = vm.run()
            if result.reason != ExecutionResult.BREAKPOINT:
                break
            if not vm.runnable_threads():
                released = debugger.release_one()
                assert released is not None
        assert result.reason == ExecutionResult.FINISHED

    def test_disabled_breakpoint_ignored(self):
        module, vm, debugger, load, _ = _debug_session()
        bp = debugger.add_breakpoint(load)
        bp.enabled = False
        vm.start("main")
        result = vm.run()
        assert result.reason == ExecutionResult.FINISHED

    def test_remove_breakpoint(self):
        module, vm, debugger, load, _ = _debug_session()
        bp = debugger.add_breakpoint(load)
        debugger.remove_breakpoint(bp)
        vm.start("main")
        assert vm.run().reason == ExecutionResult.FINISHED

    def test_peek_memory(self):
        module, vm, debugger, load, _ = _debug_session()
        address = vm.global_address("counter")
        assert debugger.peek_memory(address, 8) == 0
        assert debugger.peek_memory(0xDEAD, 8) is None
