"""Tests for the hierarchical span tracer and its exporters."""

import json

import pytest

from repro.runtime.spans import SpanTracer, maybe_span


class FakeClock:
    """A deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_tracer():
    return SpanTracer(clock=FakeClock())


class TestSpanRecording:
    def test_nesting_follows_context_stack(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert inner.parent == outer.sid
        assert outer.parent is None

    def test_structure_renders_the_tree(self):
        tracer = make_tracer()
        with tracer.span("pipeline"):
            with tracer.span("stage:detect"):
                tracer.instant("detect_seed")
                tracer.instant("detect_seed")
            with tracer.span("stage:verify"):
                tracer.instant("verify_report")
        assert tracer.structure() == [
            ("pipeline", [
                ("stage:detect", [("detect_seed", []), ("detect_seed", [])]),
                ("stage:verify", [("verify_report", [])]),
            ]),
        ]

    def test_instant_spans_have_zero_duration(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            marker = tracer.instant("livelock_release", release=1)
        assert marker.duration == 0.0
        assert marker.attrs == {"release": 1}

    def test_finish_records_attrs_and_duration(self):
        tracer = make_tracer()
        span = tracer.begin("work", seed=3)
        tracer.finish(span, reports=2)
        assert span.attrs == {"seed": 3, "reports": 2}
        assert span.duration > 0

    def test_slowest_orders_by_duration_and_excludes(self):
        tracer = make_tracer()
        clock = tracer._clock
        quick = tracer.begin("quick")
        tracer.finish(quick)
        slow = tracer.begin("slow")
        clock.now += 10.0
        tracer.finish(slow)
        root = tracer.begin("pipeline")
        clock.now += 100.0
        tracer.finish(root)
        names = [s.name for s in tracer.slowest(5, exclude=("pipeline",))]
        assert names == ["slow", "quick"]

    def test_maybe_span_without_tracer_is_noop(self):
        with maybe_span(None, "anything", seed=1) as span:
            assert span is None

    def test_maybe_span_with_tracer_records(self):
        tracer = make_tracer()
        with maybe_span(tracer, "work", seed=1) as span:
            assert span is not None
        assert tracer.find("work")


class TestAdopt:
    def payload(self):
        worker = make_tracer()
        with worker.span("detect_seed", seed=7):
            worker.instant("inner")
        return worker.export_payload()

    def test_adopt_remaps_ids_and_reparents(self):
        tracer = make_tracer()
        with tracer.span("stage") as stage:
            adopted = tracer.adopt(self.payload())
        roots = [s for s in adopted if s.parent == stage.sid]
        assert len(roots) == 1
        assert roots[0].name == "detect_seed"
        inner = [s for s in adopted if s.parent == roots[0].sid]
        assert [s.name for s in inner] == ["inner"]

    def test_adopted_groups_get_distinct_tracks(self):
        tracer = make_tracer()
        with tracer.span("stage"):
            first = tracer.adopt(self.payload())
            second = tracer.adopt(self.payload())
        assert first[0].track != second[0].track
        assert all(s.track == first[0].track for s in first)

    def test_adopt_shifts_group_to_parent_start(self):
        tracer = make_tracer()
        with tracer.span("stage") as stage:
            adopted = tracer.adopt(self.payload())
        assert min(s.start for s in adopted) == stage.start

    def test_adopt_preserves_durations(self):
        worker = make_tracer()
        span = worker.begin("detect_seed")
        worker._clock.now += 5.0
        worker.finish(span)
        tracer = make_tracer()
        with tracer.span("stage"):
            adopted = tracer.adopt(worker.export_payload())
        assert adopted[0].duration == pytest.approx(span.duration)

    def test_structure_identical_regardless_of_adopt_grouping(self):
        # One big worker payload vs two smaller ones in the same order
        # must yield the same tree shape.
        def run(split):
            tracer = make_tracer()
            with tracer.span("stage"):
                if split:
                    tracer.adopt(self.payload())
                    tracer.adopt(self.payload())
                else:
                    worker = make_tracer()
                    with worker.span("detect_seed", seed=7):
                        worker.instant("inner")
                    with worker.span("detect_seed", seed=7):
                        worker.instant("inner")
                    tracer.adopt(worker.export_payload())
            return tracer.structure()

        assert run(split=True) == run(split=False)


def traced_pipelineish():
    tracer = make_tracer()
    with tracer.span("pipeline", program="demo"):
        with tracer.span("stage:detect"):
            for seed in range(3):
                with tracer.span("detect_seed", seed=seed):
                    tracer.instant("livelock_release")
        worker = SpanTracer(clock=FakeClock())
        with worker.span("verify_report"):
            worker.instant("verify_attempt")
        with tracer.span("stage:verify"):
            tracer.adopt(worker.export_payload())
    return tracer


class TestJsonlExport:
    def test_round_trip_is_valid_json(self, tmp_path):
        tracer = traced_pipelineish()
        path = tracer.save_jsonl(str(tmp_path / "trace.jsonl"))
        with open(path) as handle:
            rows = [json.loads(line) for line in handle if line.strip()]
        assert len(rows) == len(tracer)
        assert {row["name"] for row in rows} >= {
            "pipeline", "stage:detect", "detect_seed", "verify_report",
        }

    def test_parent_links_resolve(self):
        tracer = traced_pipelineish()
        rows = [json.loads(line)
                for line in tracer.to_jsonl().splitlines()]
        ids = {row["id"] for row in rows}
        for row in rows:
            assert row["parent"] is None or row["parent"] in ids

    def test_durations_non_negative(self):
        rows = [json.loads(line)
                for line in traced_pipelineish().to_jsonl().splitlines()]
        assert all(row["dur_us"] >= 0 for row in rows)


class TestChromeExport:
    def test_file_is_valid_trace_event_json(self, tmp_path):
        tracer = traced_pipelineish()
        path = tracer.save_chrome(str(tmp_path / "trace.json"))
        with open(path) as handle:
            data = json.load(handle)
        assert isinstance(data["traceEvents"], list)
        for event in data["traceEvents"]:
            assert event["ph"] in ("B", "E")
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "B":
                assert "args" in event

    def test_timestamps_are_monotone(self):
        events = traced_pipelineish().chrome_trace()["traceEvents"]
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps)

    def test_b_and_e_events_pair_up_per_track(self):
        events = traced_pipelineish().chrome_trace()["traceEvents"]
        stacks = {}
        for event in events:
            stack = stacks.setdefault((event["pid"], event["tid"]), [])
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert stack, "E without a matching B"
                assert stack.pop() == event["name"]
        assert all(not stack for stack in stacks.values())

    def test_args_are_json_safe(self):
        tracer = make_tracer()
        with tracer.span("work", location=object(), values=(1, "x")):
            pass
        events = tracer.chrome_trace()["traceEvents"]
        json.dumps(events)  # must not raise
        begin = next(e for e in events if e["ph"] == "B")
        assert begin["args"]["values"] == [1, "x"]
