"""Tests for the instruction interpreter."""

import pytest

from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import FunctionType, I32, I64, I8, U64, VOID, ptr
from repro.runtime import VM, ExecutionResult, RoundRobinScheduler
from repro.runtime.errors import FaultKind
from tests.helpers import build_counter_race, build_straightline, run_to_completion


def run_main(module, inputs=None, max_steps=20_000):
    vm = VM(module, scheduler=RoundRobinScheduler(), inputs=inputs,
            max_steps=max_steps)
    vm.start("main")
    result = vm.run()
    return vm, result


class TestBasics:
    def test_straightline_returns(self):
        vm, result = run_main(build_straightline(7))
        assert result.reason == ExecutionResult.FINISHED
        assert vm.threads[1].return_value == 7

    def test_arithmetic_wrapping(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I32, [], source_file="a.c")
        big = b.add(b.i32((1 << 31) - 1), 1, line=1)
        b.ret(big, line=2)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        # stored as unsigned bit pattern
        assert vm.threads[1].return_value == 1 << 31

    def test_unsigned_underflow_is_huge(self):
        """The Apache-46215 semantics: 0 - 1 on u64 wraps to 2^64-1."""
        b = IRBuilder(Module("m"))
        g = b.global_var("busy", U64, 0)
        b.begin_function("main", I32, [], source_file="a.c")
        value = b.load(g, line=1)
        b.store(b.sub(value, 1, line=2), g, line=2)
        b.ret(b.i32(0), line=3)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        assert vm.memory.read_int(vm.global_address("busy"), 8,
                                  signed=False) == (1 << 64) - 1

    def test_division_by_zero_faults(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I32, [], source_file="a.c")
        bad = b.binop("sdiv", b.i32(1), 0, line=1)
        b.ret(bad, line=2)
        b.end_function()
        verify_module(b.module)
        vm, result = run_main(b.module)
        assert result.reason == ExecutionResult.FAULT
        assert vm.faults[0].kind is FaultKind.DIVISION_BY_ZERO

    def test_signed_division(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I32, [], source_file="a.c")
        q = b.binop("sdiv", b.i32(-7), 2, line=1)
        b.ret(q, line=2)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        # -7 / 2 truncates toward zero -> -3 (as unsigned pattern)
        assert vm.threads[1].return_value == (1 << 32) - 3

    def test_icmp_signedness(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I32, [], source_file="a.c")
        # -1 as u32 pattern is huge: slt says -1 < 0, ult says huge > 0
        minus_one = b.i32(-1)
        signed = b.icmp("slt", minus_one, 0, line=1)
        unsigned = b.icmp("ult", minus_one, 0, line=1)
        total = b.add(b.cast("zext", signed, I32, line=2),
                      b.binop("shl", b.cast("zext", unsigned, I32, line=2), 1,
                              line=2), line=2)
        b.ret(total, line=3)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        assert vm.threads[1].return_value == 1  # signed true, unsigned false


class TestMemoryOps:
    def test_globals_initialized(self):
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 1234)
        b.begin_function("main", I64, [], source_file="a.c")
        b.ret(b.load(g, line=1), line=2)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        assert vm.threads[1].return_value == 1234

    def test_gep_field_addressing(self):
        b = IRBuilder(Module("m"))
        struct = b.struct("pair", [("a", I64), ("b", I64)])
        g = b.global_var("p", struct)
        b.begin_function("main", I64, [], source_file="a.c")
        b.store(5, b.field(g, "b", line=1), line=1)
        b.ret(b.load(b.field(g, "b", line=2), line=2), line=3)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        assert vm.threads[1].return_value == 5
        assert vm.memory.read_int(vm.global_address("p") + 8, 8) == 5

    def test_gep_negative_index(self):
        b = IRBuilder(Module("m"))
        from repro.ir.types import ArrayType

        g = b.global_var("arr", ArrayType(I64, 4), [10, 20, 30, 40])
        b.begin_function("main", I64, [], source_file="a.c")
        base = b.index(b.cast("bitcast", g, ptr(I64), line=1), 2, line=1)
        prev = b.index(base, -1, line=2)
        b.ret(b.load(prev, line=3), line=4)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        assert vm.threads[1].return_value == 20

    def test_null_load_faults(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I64, [], source_file="a.c")
        null = b.cast("inttoptr", b.i64(0), ptr(I64), line=1)
        b.ret(b.load(null, line=2), line=3)
        b.end_function()
        verify_module(b.module)
        vm, result = run_main(b.module)
        assert result.reason == ExecutionResult.FAULT
        assert vm.faults[0].kind is FaultKind.NULL_DEREF


class TestCalls:
    def test_internal_call_and_return(self):
        b = IRBuilder(Module("m"))
        b.begin_function("double", I64, [("x", I64)], source_file="a.c")
        b.ret(b.mul(b.arg("x"), 2, line=1), line=1)
        b.end_function()
        b.begin_function("main", I64, [], source_file="a.c")
        b.ret(b.call("double", [21], line=2), line=3)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        assert vm.threads[1].return_value == 42

    def test_recursion(self):
        b = IRBuilder(Module("m"))
        fact = b.begin_function("fact", I64, [("n", I64)], source_file="a.c")
        is_zero = b.icmp("eq", b.arg("n"), 0, line=1)
        b.cond_br(is_zero, "base", "rec", line=1)
        b.at("base")
        b.ret(b.i64(1), line=2)
        b.at("rec")
        smaller = b.sub(b.arg("n"), 1, line=3)
        rec = b.call(fact, [smaller], line=3)
        b.ret(b.mul(rec, b.arg("n"), line=4), line=4)
        b.end_function()
        b.begin_function("main", I64, [], source_file="a.c")
        b.ret(b.call("fact", [6], line=5), line=5)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        assert vm.threads[1].return_value == 720

    def test_indirect_call_through_pointer(self):
        b = IRBuilder(Module("m"))
        b.begin_function("target", I32, [], source_file="a.c")
        b.ret(b.i32(99), line=1)
        b.end_function()
        b.begin_function("main", I32, [], source_file="a.c")
        addr = b.cast("ptrtoint", b.module.get_function("target"), I64, line=2)
        fn = b.cast("inttoptr", addr, ptr(FunctionType(I32, [])), line=2)
        b.ret(b.call(fn, [], line=3), line=3)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        assert vm.threads[1].return_value == 99

    def test_indirect_call_through_null_faults(self):
        """The uselib consequence: NULL function pointer dereference."""
        b = IRBuilder(Module("m"))
        b.begin_function("main", I32, [], source_file="a.c")
        fn = b.cast("inttoptr", b.i64(0), ptr(FunctionType(I32, [])), line=1)
        b.ret(b.call(fn, [], line=2), line=2)
        b.end_function()
        verify_module(b.module)
        vm, result = run_main(b.module)
        assert result.reason == ExecutionResult.FAULT
        assert vm.faults[0].kind is FaultKind.NULL_DEREF

    def test_indirect_call_through_garbage_faults(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I32, [], source_file="a.c")
        fn = b.cast("inttoptr", b.i64(0x41414141), ptr(FunctionType(I32, [])),
                    line=1)
        b.ret(b.call(fn, [], line=2), line=2)
        b.end_function()
        verify_module(b.module)
        vm, result = run_main(b.module)
        assert result.reason == ExecutionResult.FAULT
        assert vm.faults[0].kind is FaultKind.WILD_ACCESS

    def test_dangling_stack_pointer_after_return(self):
        b = IRBuilder(Module("m"))
        b.begin_function("escape", ptr(I64), [], source_file="a.c")
        slot = b.alloca(I64, name="local", line=1)
        b.store(7, slot, line=1)
        b.ret(slot, line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="a.c")
        dangling = b.call("escape", [], line=3)
        b.ret(b.load(dangling, line=4), line=4)
        b.end_function()
        verify_module(b.module)
        vm, result = run_main(b.module)
        assert result.reason == ExecutionResult.FAULT
        assert vm.faults[0].kind is FaultKind.USE_AFTER_FREE


class TestThreadsAndConcurrency:
    def test_counter_race_loses_updates_somewhere(self):
        module = build_counter_race(iterations=5)
        results = set()
        for seed in range(12):
            vm = run_to_completion(module, seed=seed)
            results.add(vm.memory.read_int(vm.global_address("counter"), 8))
        assert any(value < 10 for value in results)  # some schedule loses updates
        assert all(value <= 10 for value in results)
        assert len(results) > 1  # outcome depends on the schedule

    def test_locked_counter_is_exact(self):
        module = build_counter_race(iterations=5, with_lock=True)
        for seed in range(8):
            vm = run_to_completion(module, seed=seed)
            assert vm.memory.read_int(vm.global_address("counter"), 8) == 10

    def test_join_waits_for_child(self):
        vm = run_to_completion(build_counter_race(iterations=2), seed=3)
        assert all(t.state.value == "finished" for t in vm.threads.values())

    def test_deadlock_detected(self):
        b = IRBuilder(Module("m"))
        lock_a = b.global_var("la", I64, 0)
        lock_b = b.global_var("lb", I64, 0)

        def locker(name, first, second):
            b.begin_function(name, I32, [("arg", ptr(I8))], source_file="d.c")
            b.call("mutex_lock", [b.cast("bitcast", first, ptr(I8), line=1)],
                   line=1)
            b.call("usleep", [50], line=2)
            b.call("mutex_lock", [b.cast("bitcast", second, ptr(I8), line=3)],
                   line=3)
            b.ret(b.i32(0), line=4)
            b.end_function()

        locker("t1", lock_a, lock_b)
        locker("t2", lock_b, lock_a)
        b.begin_function("main", I32, [], source_file="d.c")
        h1 = b.call("thread_create", [b.module.get_function("t1"), b.null()],
                    line=5)
        h2 = b.call("thread_create", [b.module.get_function("t2"), b.null()],
                    line=6)
        b.call("thread_join", [h1], line=7)
        b.call("thread_join", [h2], line=8)
        b.ret(b.i32(0), line=9)
        b.end_function()
        verify_module(b.module)
        vm, result = run_main(b.module)
        assert result.reason == ExecutionResult.DEADLOCK
        assert vm.faults[-1].kind is FaultKind.DEADLOCK

    def test_step_limit(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I32, [], source_file="a.c")
        b.br("spin", line=1)
        b.at("spin")
        b.br("spin", line=2)
        b.end_function()
        verify_module(b.module)
        vm, result = run_main(b.module, max_steps=500)
        assert result.reason == ExecutionResult.STEP_LIMIT


class TestInputsAndWorld:
    def test_input_int_sequence(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I64, [], source_file="a.c")
        first = b.call("input_int", [b.i64(1)], line=1)
        second = b.call("input_int", [b.i64(1)], line=2)
        b.ret(b.add(first, b.mul(second, 100, line=3), line=3), line=3)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module, inputs={1: [7, 3]})
        assert vm.threads[1].return_value == 307

    def test_input_exhaustion_repeats_last(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I64, [], source_file="a.c")
        b.call("input_int", [b.i64(1)], line=1)
        second = b.call("input_int", [b.i64(1)], line=2)
        b.ret(second, line=3)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module, inputs={1: [5]})
        assert vm.threads[1].return_value == 5

    def test_missing_channel_yields_zero(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I64, [], source_file="a.c")
        b.ret(b.call("input_int", [b.i64(9)], line=1), line=2)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module, inputs={})
        assert vm.threads[1].return_value == 0

    def test_printf_writes_world_stdout(self):
        b = IRBuilder(Module("m"))
        fmt = b.global_string("fmt", "v=%d s=%s\n")
        msg = b.global_string("msg", "ok")
        b.begin_function("main", I32, [], source_file="a.c")
        b.call("printf", [b.cast("bitcast", fmt, ptr(I8), line=1),
                          b.i64(41), b.cast("bitcast", msg, ptr(I8), line=1)],
               line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        verify_module(b.module)
        vm, _ = run_main(b.module)
        assert vm.world.stdout == b"v=41 s=ok\n"

    def test_exit_sets_code(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I32, [], source_file="a.c")
        b.call("exit", [3], line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        verify_module(b.module)
        vm, result = run_main(b.module)
        assert result.reason == ExecutionResult.EXITED
        assert vm.world.exit_code == 3

    def test_kill_process_marks_killed(self):
        b = IRBuilder(Module("m"))
        b.begin_function("main", I32, [], source_file="a.c")
        b.call("kill_process", [], line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        verify_module(b.module)
        vm, result = run_main(b.module)
        assert result.reason == ExecutionResult.KILLED
        assert vm.world.process_killed
