"""Tests for external-function semantics (the libc/syscall layer)."""

from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import ArrayType, I32, I64, I8, VOID, ptr
from repro.runtime import VM, ExecutionResult, RoundRobinScheduler
from repro.runtime.errors import FaultKind


def run(builder_fn, inputs=None):
    b = IRBuilder(Module("m"))
    builder_fn(b)
    verify_module(b.module)
    vm = VM(b.module, scheduler=RoundRobinScheduler(), inputs=inputs)
    vm.start("main")
    result = vm.run()
    return vm, result


class TestStringOps:
    def test_strcpy_copies_and_terminates(self):
        def build(b):
            src = b.global_string("src", "hello")
            dst = b.global_var("dst", ArrayType(I8, 16))
            b.begin_function("main", I32, [], source_file="s.c")
            b.call("strcpy", [b.cast("bitcast", dst, ptr(I8), line=1),
                              b.cast("bitcast", src, ptr(I8), line=1)], line=1)
            b.ret(b.i32(0), line=2)
            b.end_function()
        vm, _ = run(build)
        assert vm.memory.read_c_string(vm.global_address("dst")) == b"hello"

    def test_strcpy_overflow_corrupts_then_faults(self):
        def build(b):
            src = b.global_string("src", "A" * 20)
            dst = b.global_var("dst", ArrayType(I8, 8))
            b.begin_function("main", I32, [], source_file="s.c")
            b.call("strcpy", [b.cast("bitcast", dst, ptr(I8), line=1),
                              b.cast("bitcast", src, ptr(I8), line=1)], line=1)
            b.ret(b.i32(0), line=2)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FAULT
        assert vm.faults[0].kind is FaultKind.BUFFER_OVERFLOW
        # the overflow corrupted up to the block end before faulting
        assert vm.memory.read_bytes(vm.global_address("dst"), 8) == b"A" * 8

    def test_field_overflow_is_nonfatal_and_corrupts_neighbour(self):
        def build(b):
            struct = b.struct("frame", [("buf", ArrayType(I8, 8)), ("fd", I32),
                                        ("pad", ArrayType(I8, 16))])
            g = b.global_var("frame", struct)
            src = b.global_string("src", "AAAAAAAA\x07\x00\x00")  # 11 chars
            b.begin_function("main", I32, [], source_file="s.c")
            dst = b.cast("bitcast", b.field(g, "buf", line=1), ptr(I8), line=1)
            b.call("strcpy", [dst, b.cast("bitcast", src, ptr(I8), line=1)],
                   line=1)
            b.ret(b.i32(0), line=2)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FINISHED
        kinds = [fault.kind for fault in vm.faults]
        assert FaultKind.FIELD_OVERFLOW in kinds
        fd = vm.memory.read_int(vm.global_address("frame") + 8, 4)
        assert fd == 7  # the neighbour field took the overflowing byte

    def test_strlen_strcmp(self):
        def build(b):
            s1 = b.global_string("s1", "abc")
            s2 = b.global_string("s2", "abc")
            b.begin_function("main", I64, [], source_file="s.c")
            length = b.call("strlen", [b.cast("bitcast", s1, ptr(I8), line=1)],
                            line=1)
            same = b.call("strcmp", [b.cast("bitcast", s1, ptr(I8), line=2),
                                     b.cast("bitcast", s2, ptr(I8), line=2)],
                          line=2)
            b.ret(b.add(length, b.cast("zext", same, I64, line=3), line=3),
                  line=3)
            b.end_function()
        vm, _ = run(build)
        assert vm.threads[1].return_value == 3

    def test_memcpy_and_memset(self):
        def build(b):
            src = b.global_var("src", ArrayType(I8, 8), b"12345678")
            dst = b.global_var("dst", ArrayType(I8, 8))
            b.begin_function("main", I32, [], source_file="s.c")
            d = b.cast("bitcast", dst, ptr(I8), line=1)
            b.call("memcpy", [d, b.cast("bitcast", src, ptr(I8), line=1), 4],
                   line=1)
            b.call("memset", [b.index(d, 4, line=2), 0x2A, 2], line=2)
            b.ret(b.i32(0), line=3)
            b.end_function()
        vm, _ = run(build)
        data = vm.memory.read_bytes(vm.global_address("dst"), 8)
        assert data == b"1234**\x00\x00"

    def test_sprintf_formats(self):
        def build(b):
            fmt = b.global_string("fmt", "n=%d")
            dst = b.global_var("dst", ArrayType(I8, 16))
            b.begin_function("main", I32, [], source_file="s.c")
            b.call("sprintf", [b.cast("bitcast", dst, ptr(I8), line=1),
                               b.cast("bitcast", fmt, ptr(I8), line=1),
                               b.i64(12)], line=1)
            b.ret(b.i32(0), line=2)
            b.end_function()
        vm, _ = run(build)
        assert vm.memory.read_c_string(vm.global_address("dst")) == b"n=12"


class TestHeap:
    def test_malloc_free_cycle(self):
        def build(b):
            b.begin_function("main", I32, [], source_file="h.c")
            block = b.call("malloc", [16], line=1)
            typed = b.cast("bitcast", block, ptr(I64), line=2)
            b.store(77, typed, line=2)
            value = b.load(typed, line=3)
            b.call("free", [block], line=4)
            b.ret(b.cast("trunc", value, I32, line=5), line=5)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FINISHED
        assert vm.threads[1].return_value == 77

    def test_free_null_is_noop(self):
        def build(b):
            b.begin_function("main", I32, [], source_file="h.c")
            b.call("free", [b.null()], line=1)
            b.ret(b.i32(0), line=2)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FINISHED
        assert not vm.faults

    def test_double_free_faults(self):
        def build(b):
            b.begin_function("main", I32, [], source_file="h.c")
            block = b.call("malloc", [8], line=1)
            b.call("free", [block], line=2)
            b.call("free", [block], line=3)
            b.ret(b.i32(0), line=4)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FAULT
        assert vm.faults[0].kind is FaultKind.DOUBLE_FREE

    def test_use_after_free_faults(self):
        def build(b):
            b.begin_function("main", I64, [], source_file="h.c")
            block = b.call("malloc", [8], line=1)
            b.call("free", [block], line=2)
            b.ret(b.load(b.cast("bitcast", block, ptr(I64), line=3), line=3),
                  line=4)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FAULT
        assert vm.faults[0].kind is FaultKind.USE_AFTER_FREE

    def test_realloc_preserves_payload(self):
        def build(b):
            b.begin_function("main", I32, [], source_file="h.c")
            block = b.call("malloc", [8], line=1)
            b.store(77, b.cast("bitcast", block, ptr(I64), line=2), line=2)
            grown = b.call("realloc", [block, 32], line=3)
            value = b.load(b.cast("bitcast", grown, ptr(I64), line=4), line=4)
            b.call("free", [grown], line=5)
            b.ret(b.cast("trunc", value, I32, line=6), line=6)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FINISHED
        assert vm.threads[1].return_value == 77
        assert not vm.faults

    def test_realloc_moves_to_fresh_block(self):
        def build(b):
            old = b.global_var("old", I64, 0)
            new = b.global_var("new", I64, 0)
            b.begin_function("main", I32, [], source_file="h.c")
            block = b.call("malloc", [8], line=1)
            b.store(block, old, line=2)
            grown = b.call("realloc", [block, 32], line=3)
            b.store(grown, new, line=4)
            b.ret(b.i32(0), line=5)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FINISHED
        old_address = vm.memory.read_int(vm.global_address("old"), 8)
        new_address = vm.memory.read_int(vm.global_address("new"), 8)
        assert old_address != new_address
        assert vm.memory.block_at(old_address).freed
        new_block = vm.memory.block_at(new_address)
        assert new_block.size >= 32 and not new_block.freed

    def test_realloc_null_acts_as_malloc(self):
        def build(b):
            b.begin_function("main", I32, [], source_file="h.c")
            block = b.call("realloc", [b.null(), 16], line=1)
            b.store(5, b.cast("bitcast", block, ptr(I64), line=2), line=2)
            value = b.load(b.cast("bitcast", block, ptr(I64), line=3), line=3)
            b.call("free", [block], line=4)
            b.ret(b.cast("trunc", value, I32, line=5), line=5)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FINISHED
        assert vm.threads[1].return_value == 5

    def test_realloc_of_freed_block_faults(self):
        def build(b):
            b.begin_function("main", I32, [], source_file="h.c")
            block = b.call("malloc", [8], line=1)
            b.call("free", [block], line=2)
            b.call("realloc", [block, 16], line=3)
            b.ret(b.i32(0), line=4)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FAULT
        assert vm.faults[0].kind is FaultKind.DOUBLE_FREE


class TestWorldOps:
    def test_privilege_ops_update_world(self):
        def build(b):
            b.begin_function("main", I32, [], source_file="w.c")
            b.call("seteuid", [0], line=1)
            b.ret(b.i32(0), line=2)
            b.end_function()
        vm, _ = run(build)
        assert vm.world.euid == 0
        assert vm.world.uid == 1000  # seteuid leaves real uid

    def test_setuid_changes_both(self):
        def build(b):
            b.begin_function("main", I32, [], source_file="w.c")
            b.call("setuid", [0], line=1)
            b.ret(b.i32(0), line=2)
            b.end_function()
        vm, _ = run(build)
        assert vm.world.uid == 0 and vm.world.euid == 0
        assert vm.world.privilege_log

    def test_exec_records_euid(self):
        def build(b):
            sh = b.global_string("sh", "/bin/sh")
            b.begin_function("main", I32, [], source_file="w.c")
            b.call("setuid", [0], line=1)
            b.call("execve", [b.cast("bitcast", sh, ptr(I8), line=2),
                              b.null(), b.null()], line=2)
            b.ret(b.i32(0), line=3)
            b.end_function()
        vm, _ = run(build)
        assert vm.world.got_root_shell()
        assert vm.world.executed("/bin/sh")

    def test_file_open_write_content(self):
        def build(b):
            path = b.global_string("p", "out.txt")
            data = b.global_string("d", "payload")
            b.begin_function("main", I32, [], source_file="w.c")
            fd = b.call("open", [b.cast("bitcast", path, ptr(I8), line=1), 0],
                        line=1)
            b.call("write", [fd, b.cast("bitcast", data, ptr(I8), line=2), 7],
                   line=2)
            b.ret(b.i32(0), line=3)
            b.end_function()
        vm, _ = run(build)
        assert vm.world.file_content("out.txt") == b"payload"

    def test_write_to_bad_fd_returns_error(self):
        def build(b):
            data = b.global_string("d", "x")
            b.begin_function("main", I64, [], source_file="w.c")
            n = b.call("write", [99, b.cast("bitcast", data, ptr(I8), line=1),
                                 1], line=1)
            b.ret(n, line=2)
            b.end_function()
        vm, _ = run(build)
        assert vm.threads[1].return_value == (1 << 64) - 1  # -1

    def test_access_logged(self):
        def build(b):
            path = b.global_string("p", "/etc/passwd")
            b.begin_function("main", I32, [], source_file="w.c")
            b.call("access", [b.cast("bitcast", path, ptr(I8), line=1), 0],
                   line=1)
            b.ret(b.i32(0), line=2)
            b.end_function()
        vm, _ = run(build)
        assert ("access", "/etc/passwd", 0) in [
            (op, path, 0) for op, path, _ in vm.world.file_access_log
        ]


class TestTiming:
    def test_io_delay_blocks_then_resumes(self):
        def build(b):
            b.begin_function("main", I32, [], source_file="t.c")
            b.call("io_delay", [100], line=1)
            b.ret(b.i32(0), line=2)
            b.end_function()
        vm, result = run(build)
        assert result.reason == ExecutionResult.FINISHED
        assert vm.step >= 100

    def test_atomic_add_returns_old(self):
        def build(b):
            g = b.global_var("g", I64, 10)
            b.begin_function("main", I64, [], source_file="t.c")
            old = b.call("atomic_add", [b.cast("bitcast", g, ptr(I8), line=1),
                                        5], line=1)
            b.ret(old, line=2)
            b.end_function()
        vm, _ = run(build)
        assert vm.threads[1].return_value == 10
        assert vm.memory.read_int(vm.global_address("g"), 8) == 15
