"""Tests for condition variables, mutex edge cases and the OS world model."""

from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, ptr
from repro.runtime import ExecutionResult, RandomScheduler, VM
from repro.runtime.os_model import OSWorld
from repro.runtime.scheduler import RoundRobinScheduler


def run(module, seed=0, max_steps=50_000):
    vm = VM(module, scheduler=RandomScheduler(seed), max_steps=max_steps)
    vm.start("main")
    result = vm.run()
    return vm, result


class TestCondVar:
    def build_producer_consumer(self):
        b = IRBuilder(Module("pc"))
        mutex = b.global_var("mutex", I64, 0)
        cond = b.global_var("cond", I64, 0)
        ready = b.global_var("ready", I64, 0)
        data = b.global_var("data", I64, 0)

        b.begin_function("producer", I32, [("arg", ptr(I8))], source_file="pc.c")
        m = b.cast("bitcast", mutex, ptr(I8), line=1)
        c = b.cast("bitcast", cond, ptr(I8), line=1)
        b.call("usleep", [20], line=1)
        b.call("mutex_lock", [m], line=2)
        b.store(42, data, line=3)
        b.store(1, ready, line=4)
        b.call("cond_signal", [c], line=5)
        b.call("mutex_unlock", [m], line=6)
        b.ret(b.i32(0), line=7)
        b.end_function()

        b.begin_function("consumer", I64, [("arg", ptr(I8))], source_file="pc.c")
        m = b.cast("bitcast", mutex, ptr(I8), line=10)
        c = b.cast("bitcast", cond, ptr(I8), line=10)
        b.call("mutex_lock", [m], line=11)
        b.br("check", line=11)
        b.at("check")
        flag = b.load(ready, line=12)
        is_ready = b.icmp("ne", flag, 0, line=12)
        b.cond_br(is_ready, "consume", "wait", line=12)
        b.at("wait")
        b.call("cond_wait", [c, m], line=13)
        b.br("check", line=13)
        b.at("consume")
        value = b.load(data, line=14)
        b.call("mutex_unlock", [m], line=15)
        b.ret(value, line=16)
        b.end_function()

        b.begin_function("main", I32, [], source_file="pc.c")
        t1 = b.call("thread_create", [b.module.get_function("consumer"),
                                      b.null()], line=20)
        t2 = b.call("thread_create", [b.module.get_function("producer"),
                                      b.null()], line=21)
        b.call("thread_join", [t1], line=22)
        b.call("thread_join", [t2], line=23)
        b.ret(b.i32(0), line=24)
        b.end_function()
        verify_module(b.module)
        return b.module

    def test_producer_consumer_completes(self):
        module = self.build_producer_consumer()
        for seed in range(8):
            vm, result = run(module, seed=seed)
            assert result.reason == ExecutionResult.FINISHED, (seed, vm.faults)
            consumer = next(t for t in vm.threads.values()
                            if t.name == "consumer")
            assert consumer.return_value == 42

    def test_condvar_ordering_suppresses_race(self):
        """The mutex + condvar make the data accesses ordered for HB."""
        from repro.detectors import run_tsan

        module = self.build_producer_consumer()
        reports, _ = run_tsan(module, seeds=range(8))
        racy_vars = {report.variable for report in reports}
        assert not any("data" in (v or "") for v in racy_vars)


class TestMutexSemantics:
    def test_relock_by_holder_is_reentrant_noop(self):
        b = IRBuilder(Module("m"))
        mutex = b.global_var("mutex", I64, 0)
        b.begin_function("main", I32, [], source_file="m.c")
        pointer = b.cast("bitcast", mutex, ptr(I8), line=1)
        b.call("mutex_lock", [pointer], line=1)
        b.call("mutex_lock", [pointer], line=2)  # same holder: no deadlock
        b.call("mutex_unlock", [pointer], line=3)
        b.ret(b.i32(0), line=4)
        b.end_function()
        verify_module(b.module)
        _, result = run(b.module)
        assert result.reason == ExecutionResult.FINISHED

    def test_unlock_by_nonholder_ignored(self):
        b = IRBuilder(Module("m"))
        mutex = b.global_var("mutex", I64, 0)
        b.begin_function("main", I32, [], source_file="m.c")
        b.call("mutex_unlock", [b.cast("bitcast", mutex, ptr(I8), line=1)],
               line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        verify_module(b.module)
        _, result = run(b.module)
        assert result.reason == ExecutionResult.FINISHED


class TestOSWorld:
    def test_open_same_path_shares_descriptor(self):
        world = OSWorld()
        fd1 = world.open_file("a.txt", 0)
        fd2 = world.open_file("a.txt", 1)
        assert fd1 == fd2
        assert world.open_file("b.txt", 2) != fd1

    def test_write_accumulates(self):
        world = OSWorld()
        fd = world.open_file("a.txt", 0)
        world.write_fd(fd, b"one", 1)
        world.write_fd(fd, b"two", 2)
        assert world.file_content("a.txt") == b"onetwo"

    def test_write_bad_fd(self):
        world = OSWorld()
        assert world.write_fd(77, b"x", 0) == -1

    def test_root_shell_requires_euid_zero(self):
        world = OSWorld(uid=1000, euid=1000)
        world.record_exec("execve", "/bin/sh", 0)
        assert not world.got_root_shell()
        world.set_uid("setuid", 0, 1)
        world.record_exec("execve", "/bin/sh", 2)
        assert world.got_root_shell()

    def test_seteuid_only_effective(self):
        world = OSWorld(uid=1000, euid=1000)
        world.set_uid("seteuid", 0, 0)
        assert world.euid == 0 and world.uid == 1000

    def test_executed_substring(self):
        world = OSWorld()
        world.record_exec("eval", "UPDATE users SET admin=1", 0)
        assert world.executed("admin=1")
        assert not world.executed("DROP TABLE")


class TestThreadSpecificState:
    def test_threads_have_independent_frames(self):
        b = IRBuilder(Module("m"))
        total = b.global_var("total", I64, 0)
        b.begin_function("worker", I32, [("arg", ptr(I8))], source_file="t.c")
        mine = b.local(I64, "mine", 0, line=1)
        value = b.cast("ptrtoint", b.arg("arg"), I64, line=2)
        b.store(value, mine, line=2)
        loaded = b.load(mine, line=3)
        b.call("atomic_add", [b.cast("bitcast", total, ptr(I8), line=4),
                              loaded], line=4)
        b.ret(b.i32(0), line=5)
        b.end_function()
        b.begin_function("main", I32, [], source_file="t.c")
        worker = b.module.get_function("worker")
        a = b.cast("inttoptr", b.i64(5), ptr(I8), line=6)
        c = b.cast("inttoptr", b.i64(9), ptr(I8), line=6)
        t1 = b.call("thread_create", [worker, a], line=7)
        t2 = b.call("thread_create", [worker, c], line=8)
        b.call("thread_join", [t1], line=9)
        b.call("thread_join", [t2], line=10)
        b.ret(b.i32(0), line=11)
        b.end_function()
        verify_module(b.module)
        for seed in range(6):
            vm, _ = run(b.module, seed=seed)
            assert vm.memory.read_int(vm.global_address("total"), 8) == 14

    def test_call_stack_snapshot_shape(self):
        b = IRBuilder(Module("m"))
        b.begin_function("inner", I32, [], source_file="cs.c")
        b.call("thread_yield", [], line=5)
        b.ret(b.i32(0), line=6)
        b.end_function()
        b.begin_function("outer", I32, [], source_file="cs.c")
        b.ret(b.call("inner", [], line=10), line=11)
        b.end_function()
        b.begin_function("main", I32, [], source_file="cs.c")
        b.ret(b.call("outer", [], line=20), line=21)
        b.end_function()
        verify_module(b.module)
        vm = VM(b.module, scheduler=RoundRobinScheduler())
        vm.start("main")
        # step until we are inside inner()
        while True:
            thread = vm.threads[1]
            frames = [frame.function.name for frame in thread.frames]
            if frames == ["main", "outer", "inner"]:
                break
            assert vm.step_thread(thread) is None
        stack = vm.threads[1].call_stack()
        assert [entry[0] for entry in stack] == ["main", "outer", "inner"]
        assert stack[0][2] == 20  # call site line in main
        assert stack[1][2] == 10  # call site line in outer
