"""Tests for the central metrics registry (repro.runtime.telemetry)."""

import json

import pytest

from repro.runtime.telemetry import (
    REPORT_BUCKETS,
    STEP_BUCKETS,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestCountersAndGauges:
    def test_counter_create_on_demand_and_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("vm.steps")
        counter.inc()
        counter.inc(41)
        assert registry.counter("vm.steps").value == 42

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_gauge_set_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("spans.records").set(10)
        registry.gauge("spans.records").set(7)
        assert registry.gauge("spans.records").value == 7


class TestHistogram:
    def test_observe_places_values_in_buckets(self):
        histogram = Histogram("h", (10, 100))
        for value in (5, 10, 50, 1000):
            histogram.observe(value)
        # counts: <=10, (10,100], >100
        assert histogram.counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.total == 1065

    def test_bounds_must_be_sorted_and_non_empty(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (10, 5))

    def test_re_registration_with_other_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        assert registry.histogram("h", (1, 2)).bounds == (1, 2)
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 3))

    def test_default_bucket_constants_are_sorted(self):
        assert list(STEP_BUCKETS) == sorted(STEP_BUCKETS)
        assert list(REPORT_BUCKETS) == sorted(REPORT_BUCKETS)


class TestSnapshot:
    def build(self, steps):
        registry = MetricsRegistry()
        registry.counter("pipeline.raw_reports").inc(16)
        registry.gauge("explore.total_pairs").set(23)
        histogram = registry.histogram("vm.steps_per_seed", STEP_BUCKETS)
        for value in steps:
            histogram.observe(value)
        return registry

    def test_snapshot_is_plain_json_with_sorted_names(self):
        snapshot = self.build([500, 1500]).snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])
        assert snapshot["histograms"]["vm.steps_per_seed"]["count"] == 2

    def test_snapshot_independent_of_observation_order(self):
        forward = self.build([100, 900, 4000]).snapshot()
        backward = self.build([4000, 900, 100]).snapshot()
        assert forward == backward

    def test_merge_snapshot_adds_counters_and_buckets(self):
        registry = self.build([500])
        registry.merge_snapshot(self.build([70000]).snapshot())
        snapshot = registry.snapshot()
        assert snapshot["counters"]["pipeline.raw_reports"] == 32
        assert snapshot["histograms"]["vm.steps_per_seed"]["count"] == 2

    def test_merge_gauge_takes_incoming_value(self):
        registry = self.build([500])
        incoming = self.build([500])
        incoming.gauge("explore.total_pairs").set(99)
        registry.merge_snapshot(incoming.snapshot())
        assert registry.snapshot()["gauges"]["explore.total_pairs"] == 99

    def test_merge_is_associative(self):
        parts = [self.build(values).snapshot()
                 for values in ([100], [900, 4000], [70000])]
        left = merge_snapshots(merge_snapshots(parts[0], parts[1]), parts[2])
        right = merge_snapshots(parts[0], merge_snapshots(parts[1], parts[2]))
        flat = merge_snapshots(*parts)
        assert left == right == flat
        assert flat["counters"]["pipeline.raw_reports"] == 48

    def test_merge_rejects_mismatched_histogram_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2)).observe(1)
        other = MetricsRegistry()
        other.histogram("h", (1, 3)).observe(1)
        with pytest.raises(ValueError):
            registry.merge_snapshot(other.snapshot())


class TestObserverPublishing:
    def test_trace_logger_publishes_record_and_drop_counts(self):
        from repro.runtime.tracing import TraceLogger, TraceRecord

        logger = TraceLogger(max_records=2)
        for step in range(4):
            logger._add(TraceRecord(step, 0, "read", "x = 1"))
        registry = MetricsRegistry()
        logger.publish(registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["tracing.records"] == 2
        assert snapshot["counters"]["tracing.dropped_records"] == 2

    def test_span_tracer_publishes_record_count_as_gauge(self):
        from repro.runtime.spans import SpanTracer

        tracer = SpanTracer()
        with tracer.span("pipeline"):
            tracer.instant("marker")
        registry = MetricsRegistry()
        tracer.publish(registry)
        tracer.publish(registry)  # re-publishing must not double
        assert registry.snapshot()["gauges"]["spans.records"] == 2
