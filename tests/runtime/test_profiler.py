"""Tests for the VM sampling profiler (repro.runtime.profiler)."""

import pytest

from repro.apps.registry import spec_by_name
from repro.detectors.tsan import run_tsan_seed
from repro.runtime.profiler import (
    DEFAULT_SAMPLE_INTERVAL,
    SamplingProfiler,
    SeedProfile,
    merge_profiles,
)


def profile_seed(seed=0, interval=97, program="memcached"):
    spec = spec_by_name(program)
    out = []
    _, result, _ = run_tsan_seed(
        spec.build(), seed, entry=spec.entry, inputs=spec.workload_inputs,
        max_steps=spec.max_steps, profile_out=out, profile_interval=interval,
    )
    assert len(out) == 1
    return out[0], result


class TestSeedProfile:
    def test_record_and_marginals(self):
        profile = SeedProfile(100)
        profile.record("main;worker", "worker", "Load", True)
        profile.record("main;worker", "worker", "Store", True)
        profile.record("main", "main", "Br", False)
        assert profile.samples == 3
        assert profile.observer_samples == 2
        assert profile.stacks == {"main;worker": 2, "main": 1}
        assert profile.top_functions() == [("worker", 2), ("main", 1)]

    def test_collapsed_format_is_sorted_stack_count_lines(self):
        profile = SeedProfile(100)
        profile.record("b", "b", "Br", False)
        profile.record("a;b", "b", "Br", False)
        profile.record("a;b", "b", "Br", False)
        assert profile.collapsed() == "a;b 2\nb 1"

    def test_payload_round_trip(self):
        profile = SeedProfile(100)
        profile.record("main;worker", "worker", "Load", True)
        clone = SeedProfile.from_payload(profile.to_payload())
        assert clone.to_payload() == profile.to_payload()

    def test_merge_adds_and_rejects_interval_mismatch(self):
        left, right = SeedProfile(100), SeedProfile(100)
        left.record("a", "a", "Br", False)
        right.record("a", "a", "Br", False)
        right.record("b", "b", "Load", True)
        left.merge(right)
        assert left.samples == 3
        assert left.stacks["a"] == 2
        with pytest.raises(ValueError):
            left.merge(SeedProfile(50))

    def test_merge_profiles_skips_nones_and_keeps_order(self):
        one, two = SeedProfile(10), SeedProfile(10)
        one.record("a", "a", "Br", False)
        two.record("b", "b", "Br", False)
        merged = merge_profiles([None, one, None, two])
        assert merged.samples == 2
        assert merge_profiles([None, None]) is None

    def test_summary_block_shape(self):
        profile = SeedProfile(100)
        profile.record("main", "main", "Load", True)
        summary = profile.summary()
        assert summary["interval"] == 100
        assert summary["samples"] == 1
        assert summary["top_functions"] == [["main", 1]]
        assert summary["top_opcodes"] == [["Load", 1]]


class TestSamplingProfiler:
    def test_interval_must_be_positive(self):
        from repro.runtime.scheduler import RandomScheduler

        with pytest.raises(ValueError):
            SamplingProfiler(RandomScheduler(seed=0), interval=0)

    def test_profiled_run_samples_app_functions(self):
        profile, result = profile_seed()
        assert profile.samples == result.steps // 97
        assert profile.samples > 0
        assert profile.observer_samples <= profile.samples
        assert all(profile.stacks.values())

    def test_profile_identical_across_two_same_seed_runs(self):
        first, _ = profile_seed(seed=3)
        second, _ = profile_seed(seed=3)
        assert first.to_payload() == second.to_payload()
        assert first.collapsed() == second.collapsed()

    def test_profiling_leaves_schedule_and_reports_unchanged(self):
        spec = spec_by_name("memcached")
        plain_reports, plain, _ = run_tsan_seed(
            spec.build(), 0, entry=spec.entry, inputs=spec.workload_inputs,
            max_steps=spec.max_steps)
        sampled_reports, sampled, _ = run_tsan_seed(
            spec.build(), 0, entry=spec.entry, inputs=spec.workload_inputs,
            max_steps=spec.max_steps, profile_out=[], profile_interval=97)
        assert sampled.steps == plain.steps
        assert ([r.uid for r in sampled_reports.reports()]
                == [r.uid for r in plain_reports.reports()])

    def test_distinct_seeds_can_produce_distinct_profiles(self):
        profiles = {profile_seed(seed=seed)[0].collapsed()
                    for seed in range(4)}
        assert len(profiles) >= 1  # all deterministic, possibly identical

    def test_default_interval_is_used_when_unspecified(self):
        spec = spec_by_name("memcached")
        out = []
        _, result, _ = run_tsan_seed(
            spec.build(), 0, entry=spec.entry, inputs=spec.workload_inputs,
            max_steps=spec.max_steps, profile_out=out)
        assert out[0].interval == DEFAULT_SAMPLE_INTERVAL
        assert out[0].samples == result.steps // DEFAULT_SAMPLE_INTERVAL
