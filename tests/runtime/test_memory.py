"""Tests for the byte-addressable memory model."""

import pytest

from repro.ir.types import ArrayType, I32, I64, I8, StructType
from repro.runtime.errors import FaultKind
from repro.runtime.memory import GUARD_GAP, Memory, MemoryBlock, store_initializer


class TestAllocation:
    def test_blocks_do_not_overlap(self):
        memory = Memory()
        a = memory.allocate(16, MemoryBlock.HEAP, name="a")
        b = memory.allocate(16, MemoryBlock.HEAP, name="b")
        assert a.end <= b.base
        assert b.base - a.end >= GUARD_GAP

    def test_block_at_resolves_interior(self):
        memory = Memory()
        block = memory.allocate(32, MemoryBlock.GLOBAL, name="g")
        assert memory.block_at(block.base) is block
        assert memory.block_at(block.base + 31) is block
        assert memory.block_at(block.base + 32) is None  # guard gap

    def test_zero_size_rounds_up(self):
        memory = Memory()
        block = memory.allocate(0, MemoryBlock.HEAP)
        assert block.size == 1


class TestReadWrite:
    def test_int_roundtrip_little_endian(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.GLOBAL, name="g")
        memory.write_int(block.base, 0x1122334455667788, 8)
        assert memory.read_int(block.base, 8, signed=False) == 0x1122334455667788
        assert memory.read_bytes(block.base, 1) == b"\x88"

    def test_unsigned_wraparound_store(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.GLOBAL)
        memory.write_int(block.base, -2, 8)
        assert memory.read_int(block.base, 8, signed=False) == (1 << 64) - 2

    def test_c_string_stops_at_nul(self):
        memory = Memory()
        block = memory.allocate(16, MemoryBlock.GLOBAL)
        memory.write_bytes(block.base, b"hello\x00world")
        assert memory.read_c_string(block.base) == b"hello"

    def test_c_string_stops_at_block_end(self):
        memory = Memory()
        block = memory.allocate(4, MemoryBlock.GLOBAL)
        memory.write_bytes(block.base, b"abcd")
        assert memory.read_c_string(block.base) == b"abcd"


class TestAccessChecking:
    def test_null_access_faults(self):
        memory = Memory()
        block, fault = memory.check_access(0, 8, False, 1, 0)
        assert block is None
        assert fault.kind is FaultKind.NULL_DEREF

    def test_wild_access_faults(self):
        memory = Memory()
        block, fault = memory.check_access(0xDEAD, 8, True, 1, 0)
        assert block is None
        assert fault.kind is FaultKind.WILD_ACCESS

    def test_use_after_free_detected(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.HEAP)
        assert memory.free(block.base, 1, 0) is None
        _, fault = memory.check_access(block.base, 8, False, 1, 1)
        assert fault.kind is FaultKind.USE_AFTER_FREE

    def test_overflow_past_block_end(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.HEAP)
        got, fault = memory.check_access(block.base + 4, 8, True, 1, 0)
        assert got is block
        assert fault.kind is FaultKind.BUFFER_OVERFLOW

    def test_valid_access_no_fault(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.HEAP)
        got, fault = memory.check_access(block.base, 8, True, 1, 0)
        assert got is block and fault is None


class TestFree:
    def test_double_free_detected(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.HEAP)
        assert memory.free(block.base, 1, 0) is None
        fault = memory.free(block.base, 1, 1)
        assert fault.kind is FaultKind.DOUBLE_FREE

    def test_free_of_global_is_invalid(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.GLOBAL)
        fault = memory.free(block.base, 1, 0)
        assert fault.kind is FaultKind.INVALID_FREE

    def test_free_of_interior_pointer_is_invalid(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.HEAP)
        fault = memory.free(block.base + 4, 1, 0)
        assert fault.kind is FaultKind.INVALID_FREE


class TestFieldsAndDescribe:
    def make_struct_block(self):
        struct = StructType("log", [
            ("outcnt", I64), ("outbuf", ArrayType(I8, 8)), ("fd", I32),
        ])
        memory = Memory()
        block = memory.allocate(struct.size(), MemoryBlock.GLOBAL, name="log",
                                value_type=struct)
        return memory, block

    def test_field_at(self):
        _, block = self.make_struct_block()
        assert block.field_at(0)[0] == "outcnt"
        assert block.field_at(8)[0] == "outbuf"
        assert block.field_at(16)[0] == "fd"
        assert block.field_at(100) is None

    def test_describe_names_fields(self):
        memory, block = self.make_struct_block()
        assert memory.describe(block.base) == "log.outcnt"
        assert memory.describe(block.base + 9) == "log.outbuf+1"

    def test_describe_unmapped_is_hex(self):
        memory = Memory()
        assert memory.describe(0x1234).startswith("0x")


class TestInitializers:
    def test_int_initializer(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.GLOBAL, value_type=I64)
        store_initializer(memory, block, I64, -5)
        assert memory.read_int(block.base, 8, signed=True) == -5

    def test_bytes_initializer(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.GLOBAL)
        store_initializer(memory, block, ArrayType(I8, 8), b"abc")
        assert memory.read_bytes(block.base, 3) == b"abc"

    def test_nested_struct_initializer(self):
        struct = StructType("pair", [("a", I64), ("b", I64)])
        memory = Memory()
        block = memory.allocate(16, MemoryBlock.GLOBAL, value_type=struct)
        store_initializer(memory, block, struct, [1, 2])
        assert memory.read_int(block.base, 8) == 1
        assert memory.read_int(block.base + 8, 8) == 2

    def test_array_of_structs_initializer(self):
        struct = StructType("acl", [("uid", I64), ("priv", I64)])
        array = ArrayType(struct, 2)
        memory = Memory()
        block = memory.allocate(array.size(), MemoryBlock.GLOBAL, value_type=array)
        store_initializer(memory, block, array, [[1, 9], [2, 0]])
        assert memory.read_int(block.base + 8, 8) == 9
        assert memory.read_int(block.base + 16, 8) == 2

    def test_none_initializer_is_zero(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.GLOBAL)
        store_initializer(memory, block, I64, None)
        assert memory.read_int(block.base, 8) == 0

    def test_bad_initializer_rejected(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.GLOBAL)
        with pytest.raises(TypeError):
            store_initializer(memory, block, I64, "nope")


class TestRawAccessBoundaries:
    """Regressions: raw reads/writes crossing a block end must not be silent."""

    def test_read_bytes_crossing_block_end_zero_pads(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.HEAP)
        memory.write_bytes(block.base, b"\xff" * 8)
        raw = memory.read_bytes(block.base + 4, 8)
        assert len(raw) == 8
        assert raw == b"\xff" * 4 + b"\x00" * 4

    def test_read_int_crossing_block_end_decodes_full_width(self):
        # a silently short buffer made read_int decode at the wrong width
        memory = Memory()
        block = memory.allocate(4, MemoryBlock.HEAP)
        memory.write_bytes(block.base, b"\x01\x02\x03\x04")
        assert memory.read_int(block.base, 8, signed=False) == 0x04030201
        assert memory.read_int(block.base, 8, signed=True) == 0x04030201

    def test_in_bounds_read_unchanged(self):
        memory = Memory()
        block = memory.allocate(8, MemoryBlock.HEAP)
        memory.write_bytes(block.base, b"abcdefgh")
        assert memory.read_bytes(block.base + 2, 4) == b"cdef"

    def test_write_bytes_crossing_block_end_records_truncation(self):
        memory = Memory()
        block = memory.allocate(4, MemoryBlock.HEAP, name="buf")
        memory.write_bytes(block.base + 2, b"\xaa" * 4)
        assert bytes(block.data) == b"\x00\x00\xaa\xaa"
        assert len(memory.recorded_faults) == 1
        fault = memory.recorded_faults[0]
        assert fault.kind == FaultKind.BUFFER_OVERFLOW
        assert "truncated" in fault.message
        assert fault.address == block.base + 2

    def test_in_bounds_write_records_nothing(self):
        memory = Memory()
        block = memory.allocate(4, MemoryBlock.HEAP)
        memory.write_bytes(block.base, b"abcd")
        assert memory.recorded_faults == []
