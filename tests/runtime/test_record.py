"""Tests for the record/replay backbone (repro.runtime.record)."""

import json

import pytest

from repro.runtime import VM
from repro.runtime.diffcheck import compare_fingerprints
from repro.runtime.record import (
    RECORD_SCHEMA,
    ReplayMismatch,
    ScheduleLog,
    ScheduleRecorder,
    _pack_ints,
    _pack_tuples,
    _unpack_ints,
    _unpack_tuples,
    module_ir_digest,
    record_seed,
    replay_log,
)
from repro.runtime.scheduler import RandomScheduler, RecordingScheduler
from tests.helpers import build_counter_race


class TestIntCodec:
    def test_round_trip(self):
        values = [0, 1, 127, 128, 300, 2 ** 20, 2 ** 40, 7]
        assert _unpack_ints(_pack_ints(values)) == values

    def test_empty(self):
        assert _unpack_ints(_pack_ints([])) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            _pack_ints([3, -1])

    def test_tuples_round_trip(self):
        tuples = [(1, 2, 3), (0, 0, 0), (400, 5, 2 ** 33)]
        assert _unpack_tuples(_pack_tuples(tuples, 3), 3) == tuples

    def test_tuple_width_enforced(self):
        with pytest.raises(ValueError, match="2-tuples"):
            _pack_tuples([(1, 2, 3)], 2)
        with pytest.raises(ValueError, match="multiple"):
            _unpack_tuples(_pack_ints([1, 2, 3]), 2)


def recorded_log(module, seed=3, **kwargs):
    log, result, fingerprint = record_seed(
        module, seed, max_steps=10_000, **kwargs)
    return log, result, fingerprint


class TestScheduleLog:
    def test_payload_round_trip(self):
        module = build_counter_race(iterations=3)
        log, _, _ = recorded_log(module)
        clone = ScheduleLog.from_payload(log.to_payload())
        assert clone.program == log.program
        assert clone.ir_digest == log.ir_digest
        assert clone.seed == log.seed
        assert clone.scheduler == log.scheduler
        assert clone.entry == log.entry
        assert clone.max_steps == log.max_steps
        assert clone.steps == log.steps
        assert clone.reason == log.reason
        assert clone.schedule == log.schedule
        assert clone.syncs == log.syncs
        assert clone.threads == log.threads

    def test_payload_rejects_unknown_schema(self):
        module = build_counter_race(iterations=2)
        log, _, _ = recorded_log(module)
        payload = log.to_payload()
        payload["schema"] = RECORD_SCHEMA + 1
        with pytest.raises(ValueError, match="unsupported record schema"):
            ScheduleLog.from_payload(payload)

    def test_file_round_trip(self, tmp_path):
        module = build_counter_race(iterations=3)
        log, _, _ = recorded_log(module)
        path = str(tmp_path / "counter_seed0003.jsonl")
        log.save(path)
        clone = ScheduleLog.load(path)
        assert clone.to_payload() == log.to_payload()

    def test_load_rejects_corrupt_line(self, tmp_path):
        module = build_counter_race(iterations=2)
        log, _, _ = recorded_log(module)
        path = str(tmp_path / "log.jsonl")
        log.save(path)
        with open(path, "a") as handle:
            handle.write('{"kind": "schedule", truncated\n')
        with pytest.raises(ValueError, match="corrupt record on line"):
            ScheduleLog.load(path)

    def test_load_rejects_missing_section(self, tmp_path):
        module = build_counter_race(iterations=2)
        log, _, _ = recorded_log(module)
        path = str(tmp_path / "log.jsonl")
        log.save(path)
        lines = [line for line in open(path)
                 if json.loads(line)["kind"] != "syncs"]
        with open(path, "w") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError, match="no syncs section"):
            ScheduleLog.load(path)

    def test_decisions_counts_quantum_lengths(self):
        log = ScheduleLog("demo", "d", 0, schedule=[(1, 5), (2, 3), (1, 2)])
        assert log.decisions == 10
        assert log.expand_schedule() == [1] * 5 + [2] * 3 + [1] * 2


class TestScheduleRecorder:
    def test_rle_matches_flat_recording(self):
        """The RLE quanta expand to the exact per-step decision trace."""
        module = build_counter_race(iterations=4)
        flat = RecordingScheduler(RandomScheduler(7))
        vm = VM(module, scheduler=flat, seed=7)
        vm.start("main")
        vm.run()

        rle = ScheduleRecorder(RandomScheduler(7))
        vm2 = VM(module, scheduler=rle, seed=7)
        vm2.add_observer(rle)
        vm2.start("main")
        vm2.run()
        assert rle.to_log(module, 7).expand_schedule() == flat.trace

    def test_reset_clears_state(self):
        module = build_counter_race(iterations=2)
        recorder = ScheduleRecorder(RandomScheduler(1))
        vm = VM(module, scheduler=recorder, seed=1)
        vm.add_observer(recorder)
        vm.start("main")
        vm.run()
        assert recorder.schedule
        recorder.reset()
        assert recorder.schedule == []
        assert recorder.syncs == []
        assert recorder.threads == []


class TestRecordReplayFidelity:
    def test_replay_is_bit_identical(self):
        module = build_counter_race(iterations=4)
        log, result, recorded = recorded_log(module, seed=5,
                                             fingerprint=True)
        outcome = replay_log(module, log, fingerprint=True)
        assert outcome.faithful
        assert outcome.digest_match
        assert outcome.result.steps == result.steps
        assert outcome.result.reason == result.reason
        assert compare_fingerprints(recorded, outcome.fingerprint) is None

    def test_replay_with_observer_stays_faithful(self):
        """Detectors are pure observers: attaching one cannot perturb."""
        from repro.detectors.report import ReportSet
        from repro.detectors.tsan import TSanDetector

        module = build_counter_race(iterations=4)
        log, _, recorded = recorded_log(module, seed=2, fingerprint=True)
        detector = TSanDetector(annotations=None, reports=ReportSet())
        outcome = replay_log(module, log, observers=[detector],
                             fingerprint=True)
        assert outcome.faithful
        assert compare_fingerprints(recorded, outcome.fingerprint) is None
        assert len(detector.reports) >= 1  # the counter race is seen

    def test_digest_mismatch_raises_when_strict(self):
        module = build_counter_race(iterations=3)
        other = build_counter_race(iterations=5)
        log, _, _ = recorded_log(module)
        assert module_ir_digest(other) != log.ir_digest
        with pytest.raises(ReplayMismatch, match="IR digest"):
            replay_log(other, log)

    def test_digest_mismatch_counted_when_lenient(self):
        module = build_counter_race(iterations=3)
        other = build_counter_race(iterations=5)
        log, _, _ = recorded_log(module)
        outcome = replay_log(other, log, strict=False)
        assert not outcome.digest_match
        assert not outcome.faithful

    def test_mutated_schedule_diverges_loudly(self):
        module = build_counter_race(iterations=4)
        log, _, _ = recorded_log(module, seed=9)
        # drop the second half of the schedule: the fallback finishes the
        # run, and the checkpoint verifier must notice
        log.schedule = log.schedule[:len(log.schedule) // 2]
        outcome = replay_log(module, log)
        assert not outcome.faithful
        assert outcome.total_divergences > 0

    def test_mutated_syncs_diverge_loudly(self):
        module = build_counter_race(iterations=4, with_lock=True)
        log, _, _ = recorded_log(module, seed=4)
        assert log.syncs, "locked counter must record acquires"
        step, tid, address = log.syncs[0]
        log.syncs[0] = (step, tid, address + 8)
        outcome = replay_log(module, log)
        assert outcome.sync_divergences >= 1
        assert not outcome.faithful

    def test_extra_recorded_checkpoints_count_as_divergence(self):
        module = build_counter_race(iterations=3)
        log, _, _ = recorded_log(module, seed=6)
        log.threads = log.threads + [(log.steps + 1, 0, 9, 9)]
        outcome = replay_log(module, log)
        assert outcome.thread_divergences >= 1
        assert not outcome.faithful

    def test_replay_result_dict(self):
        module = build_counter_race(iterations=2)
        log, _, _ = recorded_log(module)
        data = replay_log(module, log).as_dict()
        assert data["faithful"] is True
        assert data["seed"] == log.seed
        assert data["steps"] == data["recorded_steps"]
