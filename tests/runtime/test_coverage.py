"""Tests for interleaving-coverage tracking (repro.runtime.coverage)."""

from repro.detectors.tsan import run_tsan_seed
from repro.runtime import RandomScheduler
from repro.runtime.coverage import CoverageMap, SeedCoverage, SwitchTracker
from tests.helpers import build_counter_race


class _FakeThread:
    def __init__(self, thread_id, name="t"):
        self.thread_id = thread_id
        self.name = name


class TestSwitchTracker:
    def test_delegates_without_perturbing_the_schedule(self):
        threads = [_FakeThread(i) for i in range(4)]
        plain = RandomScheduler(9)
        tracked = SwitchTracker(RandomScheduler(9))
        plain_seq = [plain.choose(threads, s).thread_id for s in range(60)]
        tracked_seq = [tracked.choose(threads, s).thread_id for s in range(60)]
        assert plain_seq == tracked_seq

    def test_records_only_actual_switches(self):
        threads = {tid: _FakeThread(tid) for tid in (1, 2)}

        class _Fixed:
            def __init__(self, ids):
                self.ids = list(ids)

            def choose(self, runnable, step):
                return threads[self.ids[step]]

            def on_thread_created(self, thread):
                pass

            def reset(self):
                pass

        tracker = SwitchTracker(_Fixed([1, 1, 2, 2, 1]))
        for step in range(5):
            tracker.choose(list(threads.values()), step)
        assert tracker.switch_points == [(2, 2), (4, 1)]

    def test_signature_deterministic_and_switch_sensitive(self):
        threads = [_FakeThread(i) for i in range(3)]

        def signature(seed):
            tracker = SwitchTracker(RandomScheduler(seed))
            for step in range(40):
                tracker.choose(threads, step)
            return tracker.signature()

        assert signature(1) == signature(1)
        assert signature(1) != signature(2)

    def test_reset_clears_history(self):
        threads = [_FakeThread(i) for i in range(3)]
        tracker = SwitchTracker(RandomScheduler(4))
        for step in range(20):
            tracker.choose(threads, step)
        first = tracker.signature()
        tracker.reset()
        assert tracker.switch_points == []
        for step in range(20):
            tracker.choose(threads, step)
        assert tracker.signature() == first  # same seed, same schedule


class TestSeedCoverage:
    def test_payload_round_trip(self):
        coverage = SeedCoverage(7, frozenset({(3, 9), (1, 2)}), "abcd", 5)
        payload = coverage.to_payload()
        assert payload["pairs"] == [[1, 2], [3, 9]]  # sorted, JSON-safe
        back = SeedCoverage.from_payload(payload)
        assert back.seed == 7
        assert back.pairs == coverage.pairs
        assert back.signature == "abcd"
        assert back.switches == 5

    def test_from_run_collects_report_pairs_and_schedule(self):
        module = build_counter_race(iterations=3)
        collected = []
        reports, _, _ = run_tsan_seed(module, 1, coverage_out=collected)
        assert len(collected) == 1
        coverage = collected[0]
        assert coverage.seed == 1
        assert coverage.pairs == {report.static_key for report in reports}
        assert coverage.signature  # a real schedule always switched
        assert coverage.switches > 0

    def test_coverage_collection_does_not_change_reports(self):
        module = build_counter_race(iterations=3)
        plain, _, _ = run_tsan_seed(module, 2)
        collected = []
        tracked, _, _ = run_tsan_seed(module, 2, coverage_out=collected)
        assert [r.uid for r in plain] == [r.uid for r in tracked]


class TestCoverageMap:
    def test_merge_counts_only_new_pairs(self):
        accumulated = CoverageMap()
        first = SeedCoverage(0, frozenset({(1, 2), (3, 4)}), "sig0")
        second = SeedCoverage(1, frozenset({(3, 4), (5, 6)}), "sig1")
        third = SeedCoverage(2, frozenset({(1, 2)}), "sig0")
        assert accumulated.merge(first) == 2
        assert accumulated.merge(second) == 1
        assert accumulated.merge(third) == 0
        assert accumulated.total_pairs == 3
        assert accumulated.distinct_schedules == 2  # sig0 seen twice
        assert accumulated.seeds_merged == [0, 1, 2]

    def test_merge_all_returns_per_seed_deltas_in_order(self):
        accumulated = CoverageMap()
        wave = [
            SeedCoverage(0, frozenset({(1, 2)}), "a"),
            SeedCoverage(1, frozenset({(1, 2), (3, 4)}), "b"),
        ]
        assert accumulated.merge_all(wave) == [1, 1]
        assert accumulated.merge_all(wave) == [0, 0]
