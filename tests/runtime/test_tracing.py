"""Tests for the structured trace logger."""

from repro.runtime import VM
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.tracing import TraceLogger
from tests.helpers import build_counter_race


def traced_run(seed=0, **kwargs):
    module = build_counter_race(iterations=2)
    vm = VM(module, scheduler=RandomScheduler(seed))
    logger = TraceLogger(**kwargs)
    vm.add_observer(logger)
    vm.start("main")
    vm.run()
    return vm, logger


class TestTraceLogger:
    def test_records_accesses_and_threads(self):
        _, logger = traced_run()
        kinds = {record.kind for record in logger.records}
        assert {"read", "write", "thread", "call"} <= kinds

    def test_for_thread_filter(self):
        _, logger = traced_run()
        t2 = logger.for_thread(2)
        assert t2
        assert all(record.thread_id == 2 for record in t2)

    def test_for_address_filter(self):
        vm, logger = traced_run()
        counter = vm.global_address("counter")
        touching = logger.for_address(counter, 8)
        assert touching
        assert all(record.kind in ("read", "write") for record in touching)
        # two workers x two iterations = 4 reads and 4 writes
        assert len([r for r in touching if r.kind == "write"]) == 4

    def test_render_contains_location(self):
        _, logger = traced_run()
        text = logger.to_lines(logger.for_thread(2)[:3])
        assert "counter.c" in text

    def test_kind_filtering(self):
        _, logger = traced_run(kinds=["write"])
        assert logger.records
        assert all(record.kind == "write" for record in logger.records)

    def test_truncation(self):
        _, logger = traced_run(max_records=5)
        assert len(logger) == 5
        assert logger.truncated

    def test_dropped_counts_every_overflow_event(self):
        _, full = traced_run()
        _, logger = traced_run(max_records=5)
        assert logger.dropped == len(full.records) - 5

    def test_untruncated_logger_reports_zero_dropped(self):
        _, logger = traced_run()
        assert logger.dropped == 0
        assert not logger.truncated

    def test_to_lines_ends_with_truncation_marker(self):
        _, logger = traced_run(max_records=5)
        lines = logger.to_lines().splitlines()
        assert lines[-1] == "... truncated (%d dropped)" % logger.dropped

    def test_to_lines_on_explicit_records_omits_marker(self):
        _, logger = traced_run(max_records=5)
        text = logger.to_lines(logger.records[:3])
        assert "truncated" not in text

    def test_to_lines_without_truncation_has_no_marker(self):
        _, logger = traced_run()
        assert "truncated" not in logger.to_lines()

    def test_faults_recorded(self):
        from repro.ir import IRBuilder, Module, verify_module
        from repro.ir.types import I64, I32, ptr

        b = IRBuilder(Module("m"))
        b.begin_function("main", I64, [], source_file="f.c")
        null = b.cast("inttoptr", b.i64(0), ptr(I64), line=1)
        b.ret(b.load(null, line=2), line=3)
        b.end_function()
        verify_module(b.module)
        vm = VM(b.module)
        logger = TraceLogger()
        vm.add_observer(logger)
        vm.start("main")
        vm.run()
        faults = logger.faults()
        assert faults
        assert "null-pointer-dereference" in faults[0].detail
