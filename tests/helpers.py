"""Shared fixtures: tiny IR programs used across the test suite."""

from __future__ import annotations

from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, VOID, ptr


def build_counter_race(iterations: int = 3, with_lock: bool = False) -> Module:
    """Two threads incrementing a shared counter, optionally under a mutex."""
    module = Module("counter_race")
    b = IRBuilder(module)
    counter = b.global_var("counter", I64, 0)
    lock = b.global_var("lock", I64, 0)

    b.set_location("counter.c", 1)
    b.begin_function("worker", I32, [("arg", ptr(I8))], source_file="counter.c")
    i = b.local(I64, "i", 0, line=10)
    b.br("cond", line=10)
    b.at("cond")
    iv = b.load(i, line=11)
    more = b.icmp("slt", iv, iterations, line=11)
    b.cond_br(more, "body", "done", line=11)
    b.at("body")
    if with_lock:
        b.call("mutex_lock", [b.cast("bitcast", lock, ptr(I8), line=12)], line=12)
    value = b.load(counter, line=13)
    b.store(b.add(value, 1, line=13), counter, line=13)
    if with_lock:
        b.call("mutex_unlock", [b.cast("bitcast", lock, ptr(I8), line=14)], line=14)
    b.store(b.add(iv, 1, line=15), i, line=15)
    b.br("cond", line=15)
    b.at("done")
    b.ret(b.i32(0), line=16)
    b.end_function()

    b.begin_function("main", I32, [], source_file="counter.c")
    worker = module.get_function("worker")
    t1 = b.call("thread_create", [worker, b.null()], line=20)
    t2 = b.call("thread_create", [worker, b.null()], line=21)
    b.call("thread_join", [t1], line=22)
    b.call("thread_join", [t2], line=23)
    b.ret(b.i32(0), line=24)
    b.end_function()
    verify_module(module)
    return module


def build_adhoc_sync_module() -> Module:
    """A setter/spinner adhoc synchronization plus a post-sync data use."""
    module = Module("adhoc")
    b = IRBuilder(module)
    flag = b.global_var("flag", I32, 0)
    data = b.global_var("data", I64, 0)

    b.set_location("adhoc.c", 1)
    b.begin_function("setter", I32, [("arg", ptr(I8))], source_file="adhoc.c")
    b.store(42, data, line=10)
    b.store(1, flag, line=11)
    b.ret(b.i32(0), line=12)
    b.end_function()

    b.begin_function("waiter", I32, [("arg", ptr(I8))], source_file="adhoc.c")
    b.br("spin", line=20)
    b.at("spin")
    value = b.load(flag, line=21)
    set_ = b.icmp("ne", value, 0, line=21)
    b.cond_br(set_, "after", "spin", line=21)
    b.at("after")
    observed = b.load(data, line=22)
    b.ret(b.cast("trunc", observed, I32, line=23), line=23)
    b.end_function()

    b.begin_function("main", I32, [], source_file="adhoc.c")
    t1 = b.call("thread_create", [module.get_function("setter"), b.null()],
                line=30)
    t2 = b.call("thread_create", [module.get_function("waiter"), b.null()],
                line=31)
    b.call("thread_join", [t1], line=32)
    b.call("thread_join", [t2], line=33)
    b.ret(b.i32(0), line=34)
    b.end_function()
    verify_module(module)
    return module


def build_straightline(return_value: int = 7) -> Module:
    """A single-threaded module computing a constant, for interpreter tests."""
    module = Module("straight")
    b = IRBuilder(module)
    b.set_location("s.c", 1)
    b.begin_function("main", I32, [], source_file="s.c")
    x = b.local(I32, "x", return_value, line=2)
    value = b.load(x, line=3)
    b.ret(value, line=4)
    b.end_function()
    verify_module(module)
    return module


def run_to_completion(module: Module, seed: int = 0, inputs=None,
                      max_steps: int = 50_000):
    """Run a module's main under a random schedule; returns the VM."""
    from repro.runtime import VM
    from repro.runtime.scheduler import RandomScheduler

    vm = VM(module, scheduler=RandomScheduler(seed), inputs=inputs,
            max_steps=max_steps, seed=seed)
    vm.start("main")
    vm.run()
    return vm
