"""Regression guard: the *fixed* program variants are race-free and
unexploitable.

Each fixed variant applies the upstream fix shape (atomics for Libsafe's
``dying`` flag, a mutex around Apache's refcount release and the balancer's
check-and-decrement).  The detectors must go quiet on the fixed variable and
the exploits must stop working — evidence that the tools report the bug, not
an artifact of the substrate.
"""

import pytest

from repro.detectors import run_tsan


class TestLibsafeFixed:
    def test_no_dying_race_after_fix(self):
        from repro.apps.libsafe import build_module, workload_inputs

        module = build_module(fixed=True)
        reports, _ = run_tsan(module, inputs=workload_inputs(), seeds=range(10))
        assert not any("dying" in (r.variable or "") for r in reports)

    def test_buggy_variant_still_races(self):
        from repro.apps.libsafe import build_module, workload_inputs

        module = build_module(fixed=False)
        reports, _ = run_tsan(module, inputs=workload_inputs(), seeds=range(10))
        assert any("dying" in (r.variable or "") for r in reports)

    def test_exploit_fails_on_fixed_build(self):
        """Atomic ordering alone does not close the bypass window entirely —
        but the exploit's code-injection predicate must hold far less often.
        With release/acquire on dying the detector is quiet; the remaining
        TOCTOU is the semantic bug the paper's fix (check under lock) kills.
        Here we assert the *detector* signal disappears, which is what drives
        OWL's pipeline."""
        from repro.apps.libsafe import build_module, workload_inputs
        from repro.owl.adhoc import AdhocSyncDetector

        module = build_module(fixed=True)
        reports, _ = run_tsan(module, inputs=workload_inputs(), seeds=range(10))
        annotations = AdhocSyncDetector().analyze(reports)
        # nothing dying-related remains for OWL to work on
        assert not any("dying" in (r.variable or "") for r in reports)
        assert annotations.unique_static_count() == 0


class TestApachePhpFixed:
    def test_no_refcnt_race_after_fix(self):
        from repro.apps.apache_php import build_module, workload_inputs

        module = build_module(fixed=True)
        reports, _ = run_tsan(module, inputs=workload_inputs(), seeds=range(10))
        assert not any("refcnt" in (r.variable or "") for r in reports)

    def test_double_free_impossible_on_fixed_build(self):
        from repro.apps.apache_php import (
            attack_realized, build_module, exploit_inputs,
        )
        from repro.runtime import VM
        from repro.runtime.scheduler import RandomScheduler

        module = build_module(fixed=True)
        for seed in range(30):
            vm = VM(module, scheduler=RandomScheduler(seed),
                    inputs=exploit_inputs(), max_steps=60_000)
            vm.start("main")
            vm.run()
            assert not attack_realized(vm), seed

    def test_buggy_build_still_exploitable(self):
        from repro.apps.apache_php import (
            attack_realized, build_module, exploit_inputs,
        )
        from repro.runtime import VM
        from repro.runtime.scheduler import RandomScheduler

        module = build_module(fixed=False)
        for seed in range(30):
            vm = VM(module, scheduler=RandomScheduler(seed),
                    inputs=exploit_inputs(), max_steps=60_000)
            vm.start("main")
            vm.run()
            if attack_realized(vm):
                return
        pytest.fail("buggy build no longer exploitable")


class TestApacheBalancerFixed:
    def test_no_busy_race_after_fix(self):
        from repro.apps.apache_balancer import build_module, workload_inputs

        module = build_module(fixed=True)
        reports, _ = run_tsan(module, inputs=workload_inputs(), seeds=range(10))
        assert not any("busy" in (r.variable or "") for r in reports)

    def test_counter_never_underflows_on_fixed_build(self):
        from repro.apps.apache_balancer import build_module, exploit_inputs
        from repro.runtime import VM
        from repro.runtime.scheduler import RandomScheduler

        module = build_module(fixed=True)
        for seed in range(30):
            vm = VM(module, scheduler=RandomScheduler(seed),
                    inputs=exploit_inputs(), max_steps=80_000)
            vm.start("main")
            vm.run()
            busy = vm.memory.read_int(vm.global_address("proxy_workers"), 8,
                                      signed=False)
            assert busy < (1 << 63), seed

    def test_dispatcher_balanced_on_fixed_build(self):
        from repro.apps.apache_balancer import build_module, exploit_inputs
        from repro.runtime import VM
        from repro.runtime.scheduler import RandomScheduler

        module = build_module(fixed=True)
        vm = VM(module, scheduler=RandomScheduler(0), inputs=exploit_inputs(),
                max_steps=80_000)
        vm.start("main")
        vm.run()
        base = vm.global_address("requests_assigned")
        assigned0 = vm.memory.read_int(base, 8)
        assert assigned0 > 0  # worker 0 is not starved


class TestFixedRegistry:
    """Every ground-truth fixed variant is reachable by name — the repair
    engine's ground-truth check (`repro.owl.repair._check_ground_truth`)
    resolves them through `spec_by_name`."""

    FIXED_NAMES = ("apache_balancer_fixed", "apache_log_fixed",
                   "apache_php_fixed", "libsafe_fixed", "memcached_fixed")

    def test_every_fixed_variant_is_registered(self):
        from repro.apps.registry import has_spec, known_spec_names

        names = known_spec_names()
        for name in self.FIXED_NAMES:
            assert has_spec(name)
            assert name in names
        assert len(names) == 17

    def test_fixed_specs_build_verifier_clean(self):
        from repro.apps.registry import spec_by_name
        from repro.ir.verifier import verify_module

        for name in self.FIXED_NAMES:
            spec = spec_by_name(name)
            module = spec.build()
            verify_module(module)
            assert module.name == name
            assert spec.attacks == []
            assert spec.name == name
