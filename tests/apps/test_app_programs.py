"""Tests for the model target programs: structure, workloads and exploits."""

import pytest

from repro.ir import verify_module
from repro.runtime.errors import FaultKind


def spec(name):
    from repro.apps.registry import spec_by_name

    return spec_by_name(name)


ALL_FOCUSED = [
    "libsafe", "ssdb", "apache_log", "apache_balancer", "apache_php",
    "mysql", "linux_uselib", "linux_proc", "chrome", "memcached",
]


class TestModuleStructure:
    @pytest.mark.parametrize("name", ALL_FOCUSED)
    def test_modules_verify(self, name):
        verify_module(spec(name).build())

    @pytest.mark.parametrize("name", ["apache", "linux"])
    def test_combined_modules_verify(self, name):
        verify_module(spec(name).build())

    def test_build_is_cached(self):
        s = spec("libsafe")
        assert s.build() is s.build()

    def test_rebuild_gives_new_module(self):
        s = spec("libsafe")
        first = s.build()
        assert s.rebuild() is not first

    def test_unknown_spec_raises(self):
        from repro.apps.registry import spec_by_name

        with pytest.raises(KeyError):
            spec_by_name("postgres")

    def test_all_specs_covers_six_programs(self):
        from repro.apps.registry import all_specs

        names = {s.name for s in all_specs()}
        assert names == {
            "apache", "chrome", "libsafe", "linux", "memcached", "mysql",
            "ssdb",
        }


class TestWorkloadsAreLatent:
    """Testing workloads must complete without realizing the attacks."""

    @pytest.mark.parametrize("name", ALL_FOCUSED)
    def test_workload_does_not_crash_fatally(self, name):
        s = spec(name)
        vm = s.make_vm(seed=0)
        vm.start(s.entry)
        result = vm.run()
        assert result.reason in ("finished", "exited", "killed"), (
            name, result.reason, vm.faults,
        )

    @pytest.mark.parametrize("name", ALL_FOCUSED)
    def test_workload_does_not_realize_attacks(self, name):
        s = spec(name)
        vm = s.make_vm(seed=0)
        vm.start(s.entry)
        vm.run()
        for attack in s.attacks:
            # seed 0's plain workload should leave the attack latent
            if attack.predicate is not None:
                assert not attack.predicate(vm), (name, attack.attack_id)


class TestExploitsSucceed:
    @pytest.mark.parametrize("name", ALL_FOCUSED)
    def test_subtle_inputs_trigger_within_budget(self, name):
        s = spec(name)
        for attack in s.attacks:
            triggered = False
            for seed in range(30):
                vm = s.make_vm(seed=seed, inputs=attack.subtle_inputs)
                vm.start(s.entry)
                vm.run()
                if attack.predicate(vm):
                    triggered = True
                    break
            assert triggered, attack.attack_id

    @pytest.mark.parametrize("name", ["libsafe", "ssdb", "chrome"])
    def test_naive_inputs_stay_latent(self, name):
        s = spec(name)
        for attack in s.attacks:
            for seed in range(6):
                vm = s.make_vm(seed=seed, inputs=attack.naive_inputs)
                vm.start(s.entry)
                vm.run()
                assert not attack.predicate(vm), attack.attack_id


class TestAttackConsequences:
    def test_libsafe_injects_shell(self):
        s = spec("libsafe")
        attack = s.attacks[0]
        for seed in range(30):
            vm = s.make_vm(seed=seed, inputs=attack.subtle_inputs)
            vm.start("main")
            vm.run()
            if attack.predicate(vm):
                assert vm.world.executed("/bin/sh")
                kinds = {fault.kind for fault in vm.faults}
                assert FaultKind.FIELD_OVERFLOW in kinds
                return
        pytest.fail("libsafe exploit never fired")

    def test_apache_log_writes_into_user_html(self):
        s = spec("apache_log")
        attack = s.attacks[0]
        for seed in range(30):
            vm = s.make_vm(seed=seed, inputs=attack.subtle_inputs)
            vm.start("main")
            vm.run()
            if attack.predicate(vm):
                content = vm.world.file_content("user.html")
                assert b"log:" in content
                assert content.startswith(b"<html>")  # original page intact
                return
        pytest.fail("apache_log exploit never fired")

    def test_apache_balancer_underflow_value(self):
        from repro.apps.apache_balancer import read_assigned, read_worker_busy

        s = spec("apache_balancer")
        attack = s.attacks[0]
        for seed in range(30):
            vm = s.make_vm(seed=seed, inputs=attack.subtle_inputs)
            vm.start("main")
            vm.run()
            if attack.predicate(vm):
                busy = read_worker_busy(vm, 0)
                assert busy >= (1 << 63)  # the huge "busiest" value
                assert read_assigned(vm, 0) == 0  # starved: the DoS
                assert read_assigned(vm, 1) > 0
                return
        pytest.fail("balancer exploit never fired")

    def test_mysql_flush_grants_root(self):
        s = spec("mysql")
        attack = next(a for a in s.attacks if a.attack_id == "mysql-24988")
        for seed in range(30):
            vm = s.make_vm(seed=seed, inputs=attack.subtle_inputs)
            vm.start("main")
            vm.run()
            if attack.predicate(vm):
                assert vm.world.euid == 0
                assert vm.world.executed("Super_priv")
                return
        pytest.fail("mysql flush exploit never fired")

    def test_ssdb_faults_after_free(self):
        s = spec("ssdb")
        attack = s.attacks[0]
        for seed in range(30):
            vm = s.make_vm(seed=seed, inputs=attack.subtle_inputs)
            vm.start("main")
            vm.run()
            if attack.predicate(vm):
                kinds = {fault.kind for fault in vm.faults}
                assert kinds & {FaultKind.USE_AFTER_FREE, FaultKind.NULL_DEREF}
                return
        pytest.fail("ssdb exploit never fired")

    def test_linux_proc_gets_root_shell(self):
        s = spec("linux_proc")
        attack = s.attacks[0]
        for seed in range(30):
            vm = s.make_vm(seed=seed, inputs=attack.subtle_inputs)
            vm.start("main")
            vm.run()
            if attack.predicate(vm):
                assert vm.world.got_root_shell()
                return
        pytest.fail("linux_proc exploit never fired")


class TestSupportNoise:
    def test_benign_counter_worker_races(self):
        from repro.apps.support import add_benign_counters
        from repro.detectors import run_tsan
        from repro.ir import IRBuilder, Module
        from repro.ir.types import I32

        b = IRBuilder(Module("noise"))
        worker = add_benign_counters(b, 3, "noise.c")
        b.begin_function("main", I32, [], source_file="noise.c")
        t1 = b.call("thread_create", [b.module.get_function(worker), b.null()],
                    line=1)
        t2 = b.call("thread_create", [b.module.get_function(worker), b.null()],
                    line=2)
        b.call("thread_join", [t1], line=3)
        b.call("thread_join", [t2], line=4)
        b.ret(b.i32(0), line=5)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(8))
        assert len(reports) >= 3  # at least one pair per counter

    def test_adhoc_sync_helpers_annotatable(self):
        from repro.apps.support import add_adhoc_sync_workers
        from repro.detectors import run_tsan
        from repro.ir import IRBuilder, Module
        from repro.ir.types import I32
        from repro.owl.adhoc import AdhocSyncDetector

        b = IRBuilder(Module("noise"))
        setter, waiter = add_adhoc_sync_workers(b, 2, "noise.c")
        b.begin_function("main", I32, [], source_file="noise.c")
        t1 = b.call("thread_create", [b.module.get_function(setter), b.null()],
                    line=1)
        t2 = b.call("thread_create", [b.module.get_function(waiter), b.null()],
                    line=2)
        b.call("thread_join", [t1], line=3)
        b.call("thread_join", [t2], line=4)
        b.ret(b.i32(0), line=5)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(8))
        annotations = AdhocSyncDetector().analyze(reports)
        assert annotations.unique_static_count() == 2
