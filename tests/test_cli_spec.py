"""Tests for the CLI and the ProgramSpec contract."""

import pytest

from repro.cli import build_parser, main
from repro.spec import AttackGroundTruth, ProgramSpec
from repro.owl.vuln_sites import VulnSiteType


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "libsafe" in out
        assert "ssdb-cve-2016-1000324" in out

    def test_study_command(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        assert "Finding I" in out
        assert "Finding V" in out

    def test_exploit_command(self, capsys):
        assert main(["exploit", "libsafe-2.0-16", "--repetitions", "40"]) == 0
        out = capsys.readouterr().out
        assert "EXPLOITED" in out

    def test_detect_command(self, capsys):
        assert main(["detect", "libsafe"]) == 0
        out = capsys.readouterr().out
        assert "race reports (R.R.)" in out
        assert "verified attacks" in out
        assert "Ctrl Dependent Vulnerability" in out

    def test_export_command(self, capsys, tmp_path):
        target = tmp_path / "libsafe.json"
        assert main(["export", "libsafe", str(target)]) == 0
        assert target.exists()
        import json

        data = json.loads(target.read_text())
        assert data["program"] == "libsafe"

    def test_fix_command_emits_gated_patches(self, capsys, tmp_path):
        import glob
        import json

        out_dir = str(tmp_path / "patches")
        metrics = str(tmp_path / "metrics.json")
        assert main(["fix", "apache_log", "--out", out_dir,
                     "--metrics", metrics]) == 0
        out = capsys.readouterr().out
        assert "4/4 verified races repaired" in out
        assert "oracle=ok, detector=ok, schedulers=ok" in out
        artifacts = sorted(glob.glob(out_dir + "/patch_apache_log_*.json"))
        assert len(artifacts) == 4
        payload = json.loads(open(artifacts[0]).read())
        assert payload["strategy"] == "mutex"
        assert payload["ir_diff"]
        data = json.loads(open(metrics).read())
        assert data["schema"] == 9
        assert data["repair"]["emitted"] == 4
        assert data["telemetry"]["counters"]["repair.emitted"] == 4

    def test_detect_with_profile_prints_hot_functions(self, capsys):
        assert main(["detect", "memcached", "--profile",
                     "--profile-interval", "97"]) == 0
        out = capsys.readouterr().out
        assert "samples, " in out
        assert "function" in out and "opcode" in out

    def test_trace_stage_rollup_and_filtering(self, capsys, tmp_path):
        base = str(tmp_path / "trace")
        assert main(["trace", "memcached", "--out", base,
                     "--stage", "race_verification", "--top", "3"]) == 0
        out = capsys.readouterr().out
        # the rollup table covers every stage with sum/count/max columns
        assert "sum ms" in out and "count" in out and "max ms" in out
        assert "detect" in out and "race_verification" in out
        # the slowest-span listing is restricted to the requested stage
        assert "slowest spans in stage race_verification" in out
        assert "verify_report" in out
        assert "detect_seed" not in out.split("slowest spans")[1]

    def test_trace_unknown_stage_fails_and_lists_stages(self, capsys,
                                                        tmp_path):
        base = str(tmp_path / "trace")
        assert main(["trace", "memcached", "--out", base,
                     "--stage", "nonsense"]) == 1
        err = capsys.readouterr().err
        assert "no stage 'nonsense'" in err
        assert "detect" in err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestProgramSpec:
    def make_spec(self):
        from repro.apps.libsafe import build_module

        return ProgramSpec("demo", build_module, attacks=[
            AttackGroundTruth(
                "demo-1", "demo", VulnSiteType.MEMORY_OP,
                ("intercept.c", 165), "dying", {},
            ),
        ])

    def test_attack_for_site(self):
        spec = self.make_spec()
        module = spec.build()
        site = module.find_instructions(filename="intercept.c", line=165)[0]
        assert spec.attack_for_site(site.location).attack_id == "demo-1"
        other = module.find_instructions(filename="intercept.c", line=164)[0]
        assert spec.attack_for_site(other.location) is None

    def test_make_vm_uses_workload_inputs(self):
        spec = self.make_spec()
        spec.workload_inputs = {1: [5]}
        vm = spec.make_vm(seed=0)
        assert vm.inputs == {1: [5]}
        vm2 = spec.make_vm(seed=0, inputs={1: [9]})
        assert vm2.inputs == {1: [9]}

    def test_initial_world_factory(self):
        from repro.runtime.os_model import OSWorld

        spec = self.make_spec()
        spec.initial_world = lambda: OSWorld(uid=0, euid=0)
        vm = spec.make_vm()
        assert vm.world.uid == 0
