"""Integration tests: full OWL pipelines across the evaluated programs.

These mirror paper Tables 2 and 3 at model scale and are the slowest tests
in the suite (a few seconds each for the combined Apache/Linux targets).
"""

import pytest

from repro.owl.pipeline import OwlPipeline


def run_pipeline(name):
    from repro.apps.registry import spec_by_name

    return OwlPipeline(spec_by_name(name)).run()


@pytest.fixture(scope="module")
def apache_result():
    return run_pipeline("apache")


@pytest.fixture(scope="module")
def mysql_result():
    return run_pipeline("mysql")


class TestApacheCombined:
    def test_all_three_attacks_detected(self, apache_result):
        detected = {t.attack_id for t in apache_result.detected_ground_truths()}
        assert detected == {
            "apache-25520", "apache-46215", "apache-2.0.48-doublefree",
        }

    def test_seven_adhoc_syncs(self, apache_result):
        """Table 3 row Apache: A.S. = 7."""
        assert apache_result.counters.adhoc_syncs == 7

    def test_reduction_happens(self, apache_result):
        counters = apache_result.counters
        assert counters.verifier_eliminated > 0
        assert counters.remaining < counters.raw_reports

    def test_vulnerable_races_survive_reduction(self, apache_result):
        remaining_vars = {
            report.variable for report in apache_result.remaining_reports
        }
        assert any("outcnt" in (v or "") for v in remaining_vars)
        assert any("busy" in (v or "") for v in remaining_vars)
        assert any("refcnt" in (v or "") for v in remaining_vars)


class TestMySQL:
    def test_both_attacks_detected(self, mysql_result):
        detected = {t.attack_id for t in mysql_result.detected_ground_truths()}
        assert detected == {"mysql-24988", "mysql-setpassword"}

    def test_adhoc_syncs_annotated(self, mysql_result):
        # 6 deliberate adhoc syncs (+1 plausible lookup-loop classification)
        assert mysql_result.counters.adhoc_syncs >= 6

    def test_annotation_reduces_reports(self, mysql_result):
        counters = mysql_result.counters
        assert counters.after_annotation < counters.raw_reports


class TestLinuxKernel:
    @pytest.fixture(scope="class")
    def linux_result(self):
        return run_pipeline("linux")

    def test_ski_front_end_used(self):
        from repro.apps.registry import spec_by_name

        assert spec_by_name("linux").detector == "ski"

    def test_both_kernel_attacks_detected(self, linux_result):
        detected = {t.attack_id for t in linux_result.detected_ground_truths()}
        assert detected == {"linux-2.6.10-uselib", "linux-2.6.29-privesc"}

    def test_eight_adhoc_syncs(self, linux_result):
        assert linux_result.counters.adhoc_syncs == 8


class TestAggregateReduction:
    """The headline 94.3% claim, at model scale: most raw reports are pruned
    across the fast program set without losing any attack."""

    def test_overall_reduction_and_no_missed_attacks(self):
        names = ["libsafe", "ssdb", "memcached", "chrome"]
        total_raw = 0
        total_remaining = 0
        missed = []
        for name in names:
            from repro.apps.registry import spec_by_name

            spec = spec_by_name(name)
            result = OwlPipeline(spec).run()
            total_raw += result.counters.raw_reports
            total_remaining += result.counters.remaining
            expected = {a.attack_id for a in spec.attacks}
            found = {t.attack_id for t in result.detected_ground_truths()}
            missed.extend(expected - found)
        assert missed == []
        assert total_remaining < total_raw * 0.45  # strong reduction
