"""Tests for the call graph and dependence traversals."""

from repro.analysis import CallGraph, forward_dependent_instructions, instructions_after
from repro.ir import IRBuilder, Module, verify_module
from repro.ir.instructions import Br
from repro.ir.types import I32, I64, I8, VOID, ptr


def build_call_chain():
    """main -> a -> b; c is unreachable; d called by a and b."""
    b = IRBuilder(Module("m"))
    b.begin_function("d", VOID, [], source_file="cg.c")
    b.ret_void(line=1)
    b.end_function()
    b.begin_function("b_fn", VOID, [], source_file="cg.c")
    b.call("d", [], line=2)
    b.ret_void(line=3)
    b.end_function()
    b.begin_function("a_fn", VOID, [], source_file="cg.c")
    b.call("b_fn", [], line=4)
    b.call("d", [], line=5)
    b.ret_void(line=6)
    b.end_function()
    b.begin_function("c_fn", VOID, [], source_file="cg.c")
    b.ret_void(line=7)
    b.end_function()
    b.begin_function("main", I32, [], source_file="cg.c")
    b.call("a_fn", [], line=8)
    b.ret(b.i32(0), line=9)
    b.end_function()
    verify_module(b.module)
    return b.module


class TestCallGraph:
    def test_callees(self):
        graph = CallGraph(build_call_chain())
        assert graph.callees_of("a_fn") == {"b_fn", "d"}
        assert graph.callees_of("c_fn") == set()

    def test_callers(self):
        graph = CallGraph(build_call_chain())
        assert graph.callers_of("d") == {"a_fn", "b_fn"}
        assert graph.callers_of("main") == set()

    def test_reachable_from(self):
        graph = CallGraph(build_call_chain())
        assert graph.reachable_from("main") == {"main", "a_fn", "b_fn", "d"}

    def test_static_distance(self):
        graph = CallGraph(build_call_chain())
        assert graph.static_distance("main", "main") == 0
        assert graph.static_distance("main", "a_fn") == 1
        assert graph.static_distance("main", "d") == 2
        assert graph.static_distance("main", "c_fn") is None

    def test_sites_calling(self):
        graph = CallGraph(build_call_chain())
        assert len(graph.sites_calling("d")) == 2

    def test_indirect_sites_collected(self):
        b = IRBuilder(Module("m"))
        from repro.ir.types import FunctionType

        b.begin_function("main", I32, [("x", I64)], source_file="i.c")
        fn = b.cast("inttoptr", b.arg("x"), ptr(FunctionType(VOID, [])), line=1)
        b.call(fn, [], line=2)
        b.ret(b.i32(0), line=3)
        b.end_function()
        verify_module(b.module)
        graph = CallGraph(b.module)
        assert len(graph.indirect_sites) == 1


def build_dependence_function():
    """load g -> add -> icmp -> branch; branch guards a call; store spill."""
    b = IRBuilder(Module("m"))
    g = b.global_var("g", I64, 0)
    f = b.begin_function("f", I64, [], source_file="dep.c")
    seed = b.load(g, line=1)
    derived = b.add(seed, 1, line=2)
    spill = b.alloca(I64, name="spill", line=3)
    b.store(derived, spill, line=3)
    reloaded = b.load(spill, line=4)
    cond = b.icmp("sgt", reloaded, 10, line=5)
    b.cond_br(cond, "guarded", "out", line=5)
    b.at("guarded")
    guarded_call = b.call("getpid", [], line=6)
    b.br("out", line=6)
    b.at("out")
    independent = b.load(g, line=7)
    b.ret(independent, line=8)
    b.end_function()
    verify_module(b.module)
    return f, seed, derived, reloaded, cond, guarded_call, independent


class TestForwardDependence:
    def test_data_chain_followed(self):
        f, seed, derived, reloaded, cond, *_ = build_dependence_function()
        dependent = forward_dependent_instructions([seed], f)
        assert derived in dependent
        assert cond in dependent

    def test_spilled_value_reloaded(self):
        """clang -O0 pattern: store to alloca then load back."""
        f, seed, _, reloaded, *_ = build_dependence_function()
        dependent = forward_dependent_instructions([seed], f)
        assert reloaded in dependent

    def test_control_dependence_followed(self):
        f, seed, _, _, _, guarded_call, _ = build_dependence_function()
        dependent = forward_dependent_instructions([seed], f)
        assert guarded_call in dependent

    def test_independent_instruction_excluded(self):
        f, seed, *_, independent = build_dependence_function()
        dependent = forward_dependent_instructions([seed], f)
        assert independent not in dependent

    def test_branch_included_as_dependent(self):
        f, seed, *_ = build_dependence_function()
        dependent = forward_dependent_instructions([seed], f)
        assert any(isinstance(i, Br) and i.is_conditional for i in dependent)


class TestInstructionsAfter:
    def test_straightline_suffix(self):
        f, seed, derived, *_ = build_dependence_function()
        following = instructions_after(seed)
        assert derived in following
        assert seed not in following

    def test_includes_reachable_blocks(self):
        f, seed, *_, independent = build_dependence_function()
        following = instructions_after(seed)
        assert independent in following

    def test_loop_reentry_includes_seed_block(self):
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        f = b.begin_function("spin", VOID, [], source_file="l.c")
        b.br("loop", line=1)
        b.at("loop")
        before = b.load(g, line=2)
        seed = b.load(g, line=3)
        done = b.icmp("ne", seed, 0, line=3)
        b.cond_br(done, "out", "loop", line=4)
        b.at("out")
        b.ret_void(line=5)
        b.end_function()
        following = instructions_after(seed)
        # through the back edge, the instruction *before* the seed recurs
        assert before in following
