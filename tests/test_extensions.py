"""Tests for the extension features: audit-scope reduction (paper §7.2),
the CTrigger-style atomicity detector (§7.2/§8.3 future work), and
PRES-style record/replay scheduling."""

import pytest

from repro.detectors.atomicity import AtomicityDetector, run_atomicity
from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, ptr
from repro.owl.audit import AuditingObserver, AuditScope
from repro.runtime import VM
from repro.runtime.scheduler import (
    RandomScheduler,
    RecordingScheduler,
    ReplayScheduler,
)
from tests.helpers import build_counter_race


class TestAuditScope:
    @pytest.fixture(scope="class")
    def libsafe_scope(self):
        from repro.apps.libsafe import libsafe_spec
        from repro.owl.pipeline import OwlPipeline

        spec = libsafe_spec()
        result = OwlPipeline(spec, verify_vulnerabilities=False).run()
        return spec, AuditScope(spec.build(), result.vulnerabilities)

    def test_scope_covers_vulnerable_functions(self, libsafe_scope):
        _, scope = libsafe_scope
        assert scope.covers_function("libsafe_strcpy")
        assert scope.covers_function("stack_check")

    def test_scope_skips_unrelated_functions(self, libsafe_scope):
        _, scope = libsafe_scope
        # the benign handler and evil payload are not on any vulnerable path
        assert "benign_handler" in scope.skipped_functions()

    def test_audited_fraction_below_one(self, libsafe_scope):
        _, scope = libsafe_scope
        assert 0 < scope.audited_fraction() < 1

    def test_describe(self, libsafe_scope):
        _, scope = libsafe_scope
        assert "audit scope:" in scope.describe()

    def test_observer_alarms_on_site_execution(self, libsafe_scope):
        spec, scope = libsafe_scope
        attack = spec.attacks[0]
        for seed in range(30):
            vm = spec.make_vm(seed=seed, inputs=attack.subtle_inputs)
            monitor = AuditingObserver(scope)
            vm.add_observer(monitor)
            vm.start("main")
            vm.run()
            if attack.predicate(vm):
                # the unchecked strcpy at intercept.c:165 must have alarmed
                assert any(
                    alarm.instruction.location.line == 165
                    for alarm in monitor.alarms
                )
                return
        pytest.fail("exploit never fired under audit")

    def test_observer_skips_most_events(self, libsafe_scope):
        spec, scope = libsafe_scope
        vm = spec.make_vm(seed=0)
        monitor = AuditingObserver(scope)
        vm.add_observer(monitor)
        vm.start("main")
        vm.run()
        # section 7.2's performance point: a scoped monitor audits less
        assert monitor.events_skipped > 0


class TestAtomicityDetector:
    def build_rwr_module(self):
        """check-then-use on one variable: R(local) W(remote) R(local)."""
        b = IRBuilder(Module("m"))
        balance = b.global_var("balance", I64, 100)
        b.begin_function("withdraw", I32, [("arg", ptr(I8))],
                         source_file="atm.c")
        first = b.load(balance, line=10)
        enough = b.icmp("sge", first, 50, line=10)
        b.cond_br(enough, "take", "out", line=10)
        b.at("take")
        b.call("io_delay", [40], line=11)
        second = b.load(balance, line=12)
        b.store(b.sub(second, 50, line=12), balance, line=12)
        b.br("out", line=12)
        b.at("out")
        b.ret(b.i32(0), line=13)
        b.end_function()
        b.begin_function("main", I32, [], source_file="atm.c")
        w = b.module.get_function("withdraw")
        t1 = b.call("thread_create", [w, b.null()], line=20)
        t2 = b.call("thread_create", [w, b.null()], line=21)
        b.call("thread_join", [t1], line=22)
        b.call("thread_join", [t2], line=23)
        b.ret(b.i32(0), line=24)
        b.end_function()
        verify_module(b.module)
        return b.module

    def test_unserializable_interleaving_detected(self):
        module = self.build_rwr_module()
        reports, _ = run_atomicity(module, seeds=range(10))
        assert len(reports) >= 1
        patterns = {
            report.tags.get(AtomicityDetector.PATTERN_TAG)
            for report in reports
        }
        assert any(p for p in patterns)

    def test_reports_compatible_with_algorithm1(self):
        """The §6.3 contract: reports expose a racy load + call stack."""
        module = self.build_rwr_module()
        reports, _ = run_atomicity(module, seeds=range(10))
        with_load = [r for r in reports if r.read_access() is not None]
        assert with_load
        from repro.owl.vuln_analysis import VulnerabilityAnalyzer

        analyzer = VulnerabilityAnalyzer(module)
        for report in with_load:
            analyzer.analyze_report(report)  # must not raise

    def test_serial_execution_clean(self):
        """One thread alone has no unserializable interleavings."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("main", I32, [], source_file="s.c")
        for line in range(1, 6):
            value = b.load(g, line=line)
            b.store(b.add(value, 1, line=line), g, line=line)
        b.ret(b.i32(0), line=6)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_atomicity(b.module, seeds=range(4))
        assert len(reports) == 0

    def test_atomic_accesses_ignored(self):
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("bump", I32, [("arg", ptr(I8))], source_file="a.c")
        b.atomicrmw("add", g, 1, line=1)
        b.atomicrmw("add", g, 1, line=2)
        b.ret(b.i32(0), line=3)
        b.end_function()
        b.begin_function("main", I32, [], source_file="a.c")
        w = b.module.get_function("bump")
        t1 = b.call("thread_create", [w, b.null()], line=4)
        t2 = b.call("thread_create", [w, b.null()], line=5)
        b.call("thread_join", [t1], line=6)
        b.call("thread_join", [t2], line=7)
        b.ret(b.i32(0), line=8)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_atomicity(b.module, seeds=range(6))
        assert len(reports) == 0


class TestRecordReplay:
    def _final_counter(self, vm):
        return vm.memory.read_int(vm.global_address("counter"), 8)

    def test_replay_reproduces_execution_exactly(self):
        module = build_counter_race(iterations=4)
        recorder = RecordingScheduler(RandomScheduler(3))
        vm = VM(module, scheduler=recorder)
        vm.start("main")
        vm.run()
        original = self._final_counter(vm)
        original_steps = vm.step

        replayer = ReplayScheduler(recorder.trace)
        vm2 = VM(module, scheduler=replayer)
        vm2.start("main")
        vm2.run()
        assert self._final_counter(vm2) == original
        assert vm2.step == original_steps
        assert replayer.divergences == 0

    def test_replay_reproduces_lost_update(self):
        """Record a schedule that loses updates; replay loses them again."""
        module = build_counter_race(iterations=4)
        for seed in range(20):
            recorder = RecordingScheduler(RandomScheduler(seed))
            vm = VM(module, scheduler=recorder)
            vm.start("main")
            vm.run()
            if self._final_counter(vm) < 8:  # a buggy interleaving
                replayer = ReplayScheduler(recorder.trace)
                vm2 = VM(module, scheduler=replayer)
                vm2.start("main")
                vm2.run()
                assert self._final_counter(vm2) == self._final_counter(vm)
                return
        pytest.fail("no lossy schedule found to record")

    def test_divergence_counted_on_wrong_program(self):
        module = build_counter_race(iterations=2)
        recorder = RecordingScheduler(RandomScheduler(1))
        vm = VM(module, scheduler=recorder)
        vm.start("main")
        vm.run()
        other = build_counter_race(iterations=6)  # longer program
        replayer = ReplayScheduler(recorder.trace)
        vm2 = VM(other, scheduler=replayer)
        vm2.start("main")
        vm2.run()
        # replay ends early; the fallback finishes the run
        assert vm2.step > len(recorder.trace)
