"""Tests for race report structures and the SKI-style explorer."""

from repro.detectors import ReportSet, run_ski, run_tsan
from repro.detectors.report import AccessRecord, RaceReport
from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I64, ptr, I8, I32
from tests.helpers import build_counter_race


def make_record(instruction, thread_id, is_write, address=0x100):
    return AccessRecord(instruction, thread_id, is_write, 0,
                        (("f", "f.c", 1),), address)


def two_instructions():
    b = IRBuilder(Module("m"))
    g = b.global_var("g", I64, 0)
    b.begin_function("f", I64, [], source_file="r.c")
    load = b.load(g, line=1)
    store = b.store(b.add(load, 1, line=2), g, line=2)
    b.ret(load, line=3)
    b.end_function()
    return load, store


class TestRaceReport:
    def test_static_key_unordered(self):
        load, store = two_instructions()
        a = RaceReport(make_record(load, 1, False), make_record(store, 2, True))
        b = RaceReport(make_record(store, 2, True), make_record(load, 1, False))
        assert a.static_key == b.static_key

    def test_read_access_prefers_load(self):
        load, store = two_instructions()
        report = RaceReport(make_record(store, 1, True),
                            make_record(load, 2, False))
        assert report.read_access().instruction is load

    def test_read_access_falls_back_to_watched(self):
        load, store = two_instructions()
        report = RaceReport(make_record(store, 1, True),
                            make_record(store, 2, True))
        assert report.read_access() is None
        report.subsequent_reads.append(make_record(load, 1, False))
        assert report.read_access().instruction is load

    def test_write_access(self):
        load, store = two_instructions()
        report = RaceReport(make_record(load, 1, False),
                            make_record(store, 2, True))
        assert report.write_access().instruction is store

    def test_describe_contains_locations(self):
        load, store = two_instructions()
        report = RaceReport(make_record(load, 1, False),
                            make_record(store, 2, True), variable="g")
        text = report.describe()
        assert "r.c:1" in text and "r.c:2" in text and "g" in text


class TestReportSet:
    def test_dedup(self):
        load, store = two_instructions()
        reports = ReportSet()
        assert reports.add(RaceReport(make_record(load, 1, False),
                                      make_record(store, 2, True)))
        assert not reports.add(RaceReport(make_record(store, 2, True),
                                          make_record(load, 1, False)))
        assert len(reports) == 1

    def test_duplicate_merges_watched_reads(self):
        load, store = two_instructions()
        reports = ReportSet()
        first = RaceReport(make_record(load, 1, False),
                           make_record(store, 2, True))
        reports.add(first)
        duplicate = RaceReport(make_record(load, 1, False),
                               make_record(store, 2, True))
        duplicate.subsequent_reads.append(make_record(load, 3, False))
        reports.add(duplicate)
        assert len(first.subsequent_reads) == 1

    def test_remove_and_contains(self):
        load, store = two_instructions()
        reports = ReportSet()
        report = RaceReport(make_record(load, 1, False),
                            make_record(store, 2, True))
        reports.add(report)
        assert report in reports
        reports.remove(report)
        assert report not in reports

    def test_tag_queries(self):
        load, store = two_instructions()
        reports = ReportSet()
        a = RaceReport(make_record(load, 1, False), make_record(store, 2, True))
        reports.add(a)
        a.tags["adhoc-sync"] = True
        assert reports.tagged("adhoc-sync") == [a]
        assert reports.untagged("adhoc-sync") == []


class TestSki:
    def test_ski_finds_counter_race(self):
        module = build_counter_race(iterations=3)
        reports, results = run_ski(module, seeds=range(10))
        assert len(reports) >= 1
        assert all(r.steps > 0 for r in results)

    def test_ski_reports_labelled(self):
        module = build_counter_race(iterations=3)
        reports, _ = run_ski(module, seeds=range(10))
        assert all(report.detector == "ski" for report in reports)

    def test_ski_and_tsan_agree_on_static_races(self):
        module = build_counter_race(iterations=3)
        ski_reports, _ = run_ski(module, seeds=range(12))
        tsan_reports, _ = run_tsan(module, seeds=range(12))
        ski_keys = {r.static_key for r in ski_reports}
        tsan_keys = {r.static_key for r in tsan_reports}
        assert ski_keys & tsan_keys
