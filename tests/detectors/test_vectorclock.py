"""Tests for vector clocks."""

from repro.detectors.vectorclock import VectorClock


class TestVectorClock:
    def test_initial_get_is_zero(self):
        assert VectorClock().get(3) == 0

    def test_tick_increments_own_component(self):
        clock = VectorClock()
        clock.tick(1)
        clock.tick(1)
        assert clock.get(1) == 2
        assert clock.get(2) == 0

    def test_join_is_pointwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({2: 5, 3: 2})
        a.join(b)
        assert (a.get(1), a.get(2), a.get(3)) == (3, 5, 2)

    def test_happens_before_reflexive(self):
        a = VectorClock({1: 2})
        assert a.happens_before(a.copy())

    def test_happens_before_ordering(self):
        earlier = VectorClock({1: 1})
        later = VectorClock({1: 2, 2: 1})
        assert earlier.happens_before(later)
        assert not later.happens_before(earlier)

    def test_concurrent_clocks(self):
        a = VectorClock({1: 2})
        b = VectorClock({2: 2})
        assert not a.happens_before(b)
        assert not b.happens_before(a)

    def test_ordered_with_epoch(self):
        clock = VectorClock({1: 5})
        assert clock.ordered_with(1, 5)
        assert clock.ordered_with(1, 3)
        assert not clock.ordered_with(1, 6)
        assert not clock.ordered_with(2, 1)

    def test_copy_is_independent(self):
        a = VectorClock({1: 1})
        b = a.copy()
        b.tick(1)
        assert a.get(1) == 1
        assert b.get(1) == 2
