"""Tests for predictive sync-preserving race detection.

Covers the four layers of :mod:`repro.detectors.predict`:

- the **closure** on hand-built traces: a true race is feasible, pairs
  ordered by locks/joins/atomics are not, and a reversal-only race is
  found only under the optimistic (sync-reversal) relaxation;
- the **prediction pass** over a recorded log, including the
  replay-witness round-trip (a predicted race re-found by replaying the
  synthesized witness schedule with a fresh TSan detector);
- the **explorer wave-0 integration**: jobs=1 and jobs=2 produce
  bit-identical ``predict`` metrics blocks and report sets, and the
  pipeline lands the block in the schema-8 metrics JSON with the
  ``predicted`` provenance verdict attached;
- the **predicted ⊇ observed** property on random IR: every race the HB
  detector observed in the trace is predicted from it (each closure edge
  is an HB edge, so an infeasible pair is HB-ordered).
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.detectors.predict import (
    PredictPolicy,
    PredictiveTrace,
    predict_from_log,
    sync_preserving_feasible,
)
from tests.helpers import build_counter_race
from tests.test_properties import build_random_module


class TestSyncPreservingClosure:
    def test_plain_conflicting_pair_is_feasible(self):
        trace = PredictiveTrace()
        trace.fork(0, 1)
        trace.fork(0, 2)
        first = trace.write(1, 0x100)
        second = trace.read(2, 0x100)
        assert sync_preserving_feasible(trace, first, second)

    def test_lock_protected_pair_is_infeasible_in_both_modes(self):
        trace = PredictiveTrace()
        trace.fork(0, 1)
        trace.fork(0, 2)
        trace.acquire(1, 0x10)
        first = trace.write(1, 0x100)
        trace.release(1, 0x10)
        trace.acquire(2, 0x10)
        second = trace.read(2, 0x100)
        trace.release(2, 0x10)
        # Both critical sections hold the same lock around the access:
        # co-enabling the pair would need both sections open at once.
        assert not sync_preserving_feasible(trace, first, second)
        assert not sync_preserving_feasible(trace, first, second,
                                            optimistic=True)

    def test_reversal_only_race_needs_optimistic_mode(self):
        # t1 writes, then runs an unrelated empty critical section; t2
        # later takes the same lock before its racing read.  The write
        # itself needs nothing, but sync preservation forces t2's
        # acquire to observe t1's earlier release — pulling in the write
        # and killing the pair.  t1's section is not *required* by the
        # reordering, so the ASE 2022 relaxation may push it past the
        # race, freeing the read.
        trace = PredictiveTrace()
        trace.fork(0, 1)
        trace.fork(0, 2)
        first = trace.write(1, 0x100)
        trace.acquire(1, 0x10)
        trace.release(1, 0x10)
        trace.acquire(2, 0x10)
        trace.release(2, 0x10)
        second = trace.read(2, 0x100)
        assert not sync_preserving_feasible(trace, first, second)
        assert sync_preserving_feasible(trace, first, second,
                                        optimistic=True)

    def test_join_ordered_pair_is_infeasible(self):
        trace = PredictiveTrace()
        trace.fork(0, 1)
        first = trace.write(1, 0x100)
        trace.join(0, 1)
        second = trace.read(0, 0x100)
        assert not sync_preserving_feasible(trace, first, second)
        assert not sync_preserving_feasible(trace, first, second,
                                            optimistic=True)

    def test_atomic_rel_acq_ordered_pair_is_infeasible(self):
        # flag-publish idiom: the write precedes an atomic store the
        # reader's atomic load observed — the rel-acq edge stays even in
        # optimistic mode (atomics are order-preserved).
        trace = PredictiveTrace()
        trace.fork(0, 1)
        trace.fork(0, 2)
        first = trace.write(1, 0x100)
        trace.atomic_write(1, 0x200)
        trace.atomic_read(2, 0x200)
        second = trace.read(2, 0x100)
        assert not sync_preserving_feasible(trace, first, second)
        assert not sync_preserving_feasible(trace, first, second,
                                            optimistic=True)

    def test_unreleased_section_poisons_the_closure(self):
        trace = PredictiveTrace()
        trace.fork(0, 1)
        trace.fork(0, 2)
        trace.acquire(1, 0x10)
        first = trace.write(1, 0x100)
        # t1 never releases; t2's acquire of the same lock can never be
        # satisfied in any reordering that keeps t1's section.
        trace.acquire(2, 0x10)
        second = trace.read(2, 0x100)
        trace.release(2, 0x10)
        assert not sync_preserving_feasible(trace, first, second)


def _record_counter_race(seed=0, **module_kw):
    from repro.runtime.record import record_seed
    from repro.runtime.scheduler import RandomScheduler

    module = build_counter_race(**module_kw)
    log, _result, _ = record_seed(
        module, seed, scheduler=RandomScheduler(seed), max_steps=50_000,
        program="counter_race",
    )
    return module, log


class TestPredictFromLog:
    def test_predicts_the_counter_race(self):
        module, log = _record_counter_race()
        result = predict_from_log(module, log)
        assert result.counters["predicted"] >= 1
        keys = result.predicted_keys
        assert keys == {r.static_key for r in result.report_set()}
        assert result.counters["replay_divergences"] == 0

    def test_locked_counter_has_no_prediction(self):
        module, log = _record_counter_race(with_lock=True)
        result = predict_from_log(module, log)
        assert result.counters["predicted"] == 0
        assert result.counters["closures"] > 0

    def test_witness_round_trip_confirms_the_race(self):
        # Force witness synthesis by claiming nothing was observed: every
        # prediction must then be re-found by replaying its witness.
        module, log = _record_counter_race()
        result = predict_from_log(module, log, observed_keys=set())
        assert result.counters["predicted"] >= 1
        assert result.counters["witness_attempts"] >= 1
        assert result.counters["witnessed"] == result.counters["predicted"]
        assert result.counters["unwitnessed"] == 0
        for prediction in result.predictions:
            assert prediction.report.tags["predicted"]["witnessed"] is True

    def test_no_witness_policy_marks_predictions_unwitnessed(self):
        module, log = _record_counter_race()
        result = predict_from_log(
            module, log, observed_keys=set(),
            policy=PredictPolicy(witness=False))
        assert result.counters["witness_attempts"] == 0
        assert result.counters["unwitnessed"] == result.counters["predicted"]

    def test_payload_round_trip_is_lossless(self):
        module, log = _record_counter_race()
        result = predict_from_log(module, log)
        clone = type(result).from_payload(module, result.to_payload())
        assert json.dumps(clone.metrics_block(), sort_keys=True) == \
            json.dumps(result.metrics_block(), sort_keys=True)


class TestExplorerPredictWave:
    def _explore(self, jobs):
        from repro.apps.registry import spec_by_name
        from repro.owl.explore import ExplorePolicy, explore_program

        policy = ExplorePolicy(max_seeds=12, wave_size=4, saturation_k=2,
                               predict=PredictPolicy())
        reports, _ = explore_program(
            spec_by_name("memcached"), jobs=jobs, explore=policy)
        return reports, policy.last

    def test_wave0_is_the_predict_wave(self):
        reports, result = self._explore(jobs=1)
        assert result.predict is not None
        assert result.waves[0].scheduler == "predict"
        assert result.waves[0].seeds == [0]
        predicted = result.predict.predicted_keys
        assert predicted <= {report.static_key for report in reports}
        assert predicted <= result.coverage.pairs

    def test_jobs_parity_is_bit_identical(self):
        reports_1, result_1 = self._explore(jobs=1)
        reports_2, result_2 = self._explore(jobs=2)
        assert json.dumps(result_1.predict.metrics_block(), sort_keys=True) \
            == json.dumps(result_2.predict.metrics_block(), sort_keys=True)
        assert json.dumps(result_1.metrics_block(), sort_keys=True) == \
            json.dumps(result_2.metrics_block(), sort_keys=True)
        assert [r.uid for r in reports_1] == [r.uid for r in reports_2]

    def test_pipeline_lands_predict_block(self):
        from repro.apps.registry import spec_by_name
        from repro.owl.pipeline import OwlPipeline

        result = OwlPipeline(spec_by_name("memcached"),
                             predict=PredictPolicy()).run()
        assert result.predict is not None
        data = result.metrics.as_dict()
        assert data["schema"] == 9
        assert data["predict"]["detector"] == "predict"
        assert data["predict"]["counters"]["predicted"] >= 1
        assert data["telemetry"]["counters"]["predict.predicted"] >= 1
        # the predict wave replaced wave 0, not added to the budget
        assert data["explore"]["waves"][0]["scheduler"] == "predict"

    def test_pipeline_predict_excludes_replay(self):
        import pytest

        from repro.apps.registry import spec_by_name
        from repro.owl.pipeline import OwlPipeline

        with pytest.raises(ValueError):
            OwlPipeline(spec_by_name("memcached"),
                        predict=PredictPolicy(), replay=object())

    def test_predicted_verdict_resolves_disposition(self):
        from repro.owl.provenance import (
            DISPOSITION_PREDICTED, ReportProvenance,
        )

        module, log = _record_counter_race()
        report = predict_from_log(module, log).predictions[0].report
        record = ReportProvenance(report)
        record.record("detect", "reported")
        record.record("predict", "predicted", witnessed=False,
                      observed=False, mode="sync-preserving")
        assert record.disposition == DISPOSITION_PREDICTED
        # later verification upgrades it — predicted never outranks
        # evidence from a live re-execution
        record.record("race_verification", "verified")
        assert record.disposition != DISPOSITION_PREDICTED


class TestPredictedSupersetProperty:
    """predicted ⊇ observed: every closure edge is an HB edge of the
    trace, so a pair the closure rejects is HB-ordered and cannot have
    been reported by the HB detector riding the same execution."""

    op_lists = st.lists(
        st.tuples(
            st.sampled_from(["inc", "store", "load", "heap", "locked_inc",
                             "sleep"]),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=1, max_size=8,
    )

    @given(op_lists, st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_predicted_contains_observed_on_random_ir(self, ops, workers,
                                                      seed):
        from repro.detectors.tsan import TSanDetector
        from repro.runtime.record import record_seed, replay_log
        from repro.runtime.scheduler import RandomScheduler

        module = build_random_module(ops, workers)
        log, _result, _ = record_seed(
            module, seed, scheduler=RandomScheduler(seed),
            max_steps=30_000, program="rand",
        )
        detector = TSanDetector()
        replay_log(module, log, observers=[detector])
        observed = {report.static_key for report in detector.reports}
        prediction = predict_from_log(
            module, log, policy=PredictPolicy(witness=False))
        assert observed <= prediction.predicted_keys
