"""Tests for the happens-before (TSan-style) race detector."""

from repro.detectors import AnnotationSet, run_tsan
from repro.detectors.annotations import AdhocSyncAnnotation
from repro.detectors.lockset import run_lockset
from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, ptr
from tests.helpers import build_adhoc_sync_module, build_counter_race


class TestRaceDetection:
    def test_unlocked_counter_races(self):
        module = build_counter_race(iterations=3)
        reports, _ = run_tsan(module, seeds=range(6))
        assert len(reports) >= 1
        variables = {report.variable for report in reports}
        assert any("counter" in (v or "") for v in variables)

    def test_locked_counter_clean(self):
        module = build_counter_race(iterations=3, with_lock=True)
        reports, _ = run_tsan(module, seeds=range(6))
        assert len(reports) == 0

    def test_report_carries_both_stacks(self):
        module = build_counter_race(iterations=2)
        reports, _ = run_tsan(module, seeds=range(6))
        report = next(iter(reports))
        assert report.first.call_stack
        assert report.second.call_stack
        assert report.first.thread_id != report.second.thread_id

    def test_reports_deduplicated_across_seeds(self):
        module = build_counter_race(iterations=2)
        few, _ = run_tsan(module, seeds=range(2))
        many, _ = run_tsan(module, seeds=range(10))
        # more seeds may find more pairs but never duplicates of one pair
        keys = [report.static_key for report in many]
        assert len(keys) == len(set(keys))
        assert len(many) >= len(few)

    def test_join_edge_suppresses_race(self):
        """Accesses ordered by thread_join must not be reported."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("child", I32, [("arg", ptr(I8))], source_file="j.c")
        b.store(1, g, line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="j.c")
        t = b.call("thread_create", [b.module.get_function("child"), b.null()],
                   line=3)
        b.call("thread_join", [t], line=4)
        b.ret(b.load(g, line=5), line=5)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(6))
        assert len(reports) == 0

    def test_create_edge_suppresses_race(self):
        """Parent writes before spawning; child reads: ordered."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("child", I64, [("arg", ptr(I8))], source_file="c.c")
        b.ret(b.load(g, line=1), line=1)
        b.end_function()
        b.begin_function("main", I32, [], source_file="c.c")
        b.store(9, g, line=2)
        t = b.call("thread_create", [b.module.get_function("child"), b.null()],
                   line=3)
        b.call("thread_join", [t], line=4)
        b.ret(b.i32(0), line=5)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(6))
        assert len(reports) == 0

    def test_mutex_hb_suppresses_race(self):
        module = build_counter_race(iterations=4, with_lock=True)
        reports, _ = run_tsan(module, seeds=range(8))
        assert len(reports) == 0

    def test_atomic_accesses_not_reported(self):
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("w", I32, [("arg", ptr(I8))], source_file="a.c")
        b.store(1, g, line=1, atomic=True)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="a.c")
        t = b.call("thread_create", [b.module.get_function("w"), b.null()],
                   line=3)
        value = b.load(g, line=4, atomic=True)
        b.call("thread_join", [t], line=5)
        b.ret(value, line=6)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(8))
        assert len(reports) == 0


class TestAdhocAnnotations:
    def test_adhoc_sync_reported_without_annotation(self):
        module = build_adhoc_sync_module()
        reports, _ = run_tsan(module, seeds=range(6))
        variables = {report.variable for report in reports}
        assert any("flag" in (v or "") for v in variables)
        assert any("data" in (v or "") for v in variables)

    def test_annotation_suppresses_flag_and_data_races(self):
        module = build_adhoc_sync_module()
        raw, _ = run_tsan(module, seeds=range(6))
        flag_report = next(r for r in raw if "flag" in (r.variable or ""))
        read = next(a.instruction for a in flag_report.accesses()
                    if not a.is_write)
        write = next(a.instruction for a in flag_report.accesses()
                     if a.is_write)
        annotations = AnnotationSet([AdhocSyncAnnotation(read, write, "flag")])
        reduced, _ = run_tsan(module, seeds=range(6), annotations=annotations)
        # the markup orders the flag pair AND everything published through it
        assert len(reduced) == 0


class TestWatchList:
    def test_write_write_race_gets_subsequent_read(self):
        """Section 6.3: write-write races need a following load attached."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("w", I32, [("arg", ptr(I8))], source_file="ww.c")
        b.store(1, g, line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="ww.c")
        t1 = b.call("thread_create", [b.module.get_function("w"), b.null()],
                    line=3)
        t2 = b.call("thread_create", [b.module.get_function("w"), b.null()],
                    line=4)
        b.call("thread_join", [t1], line=5)
        b.call("thread_join", [t2], line=6)
        b.ret(b.load(g, line=7), line=7)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(8))
        ww = [r for r in reports if r.is_write_write()]
        assert ww
        report = ww[0]
        assert report.read_access() is not None
        assert report.read_access().instruction.opcode == "load"


class TestLocksetBaseline:
    def test_lockset_noisier_than_hb(self):
        """Eraser flags fork/join-ordered accesses HB exonerates."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("child", I32, [("arg", ptr(I8))], source_file="l.c")
        b.store(1, g, line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="l.c")
        t = b.call("thread_create", [b.module.get_function("child"), b.null()],
                   line=3)
        b.call("thread_join", [t], line=4)
        b.ret(b.load(g, line=5), line=5)
        b.end_function()
        verify_module(b.module)
        hb_reports, _ = run_tsan(b.module, seeds=range(4))
        lockset_reports = run_lockset(b.module, seeds=range(4))
        assert len(hb_reports) == 0
        assert len(lockset_reports) >= 1
