"""Tests for the happens-before (TSan-style) race detector."""

from repro.detectors import AnnotationSet, run_tsan
from repro.detectors.annotations import AdhocSyncAnnotation
from repro.detectors.lockset import run_lockset
from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, ptr
from tests.helpers import build_adhoc_sync_module, build_counter_race


class TestRaceDetection:
    def test_unlocked_counter_races(self):
        module = build_counter_race(iterations=3)
        reports, _ = run_tsan(module, seeds=range(6))
        assert len(reports) >= 1
        variables = {report.variable for report in reports}
        assert any("counter" in (v or "") for v in variables)

    def test_locked_counter_clean(self):
        module = build_counter_race(iterations=3, with_lock=True)
        reports, _ = run_tsan(module, seeds=range(6))
        assert len(reports) == 0

    def test_report_carries_both_stacks(self):
        module = build_counter_race(iterations=2)
        reports, _ = run_tsan(module, seeds=range(6))
        report = next(iter(reports))
        assert report.first.call_stack
        assert report.second.call_stack
        assert report.first.thread_id != report.second.thread_id

    def test_reports_deduplicated_across_seeds(self):
        module = build_counter_race(iterations=2)
        few, _ = run_tsan(module, seeds=range(2))
        many, _ = run_tsan(module, seeds=range(10))
        # more seeds may find more pairs but never duplicates of one pair
        keys = [report.static_key for report in many]
        assert len(keys) == len(set(keys))
        assert len(many) >= len(few)

    def test_join_edge_suppresses_race(self):
        """Accesses ordered by thread_join must not be reported."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("child", I32, [("arg", ptr(I8))], source_file="j.c")
        b.store(1, g, line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="j.c")
        t = b.call("thread_create", [b.module.get_function("child"), b.null()],
                   line=3)
        b.call("thread_join", [t], line=4)
        b.ret(b.load(g, line=5), line=5)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(6))
        assert len(reports) == 0

    def test_create_edge_suppresses_race(self):
        """Parent writes before spawning; child reads: ordered."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("child", I64, [("arg", ptr(I8))], source_file="c.c")
        b.ret(b.load(g, line=1), line=1)
        b.end_function()
        b.begin_function("main", I32, [], source_file="c.c")
        b.store(9, g, line=2)
        t = b.call("thread_create", [b.module.get_function("child"), b.null()],
                   line=3)
        b.call("thread_join", [t], line=4)
        b.ret(b.i32(0), line=5)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(6))
        assert len(reports) == 0

    def test_mutex_hb_suppresses_race(self):
        module = build_counter_race(iterations=4, with_lock=True)
        reports, _ = run_tsan(module, seeds=range(8))
        assert len(reports) == 0

    def test_atomic_accesses_not_reported(self):
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("w", I32, [("arg", ptr(I8))], source_file="a.c")
        b.store(1, g, line=1, atomic=True)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="a.c")
        t = b.call("thread_create", [b.module.get_function("w"), b.null()],
                   line=3)
        value = b.load(g, line=4, atomic=True)
        b.call("thread_join", [t], line=5)
        b.ret(value, line=6)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(8))
        assert len(reports) == 0


class TestAdhocAnnotations:
    def test_adhoc_sync_reported_without_annotation(self):
        module = build_adhoc_sync_module()
        reports, _ = run_tsan(module, seeds=range(6))
        variables = {report.variable for report in reports}
        assert any("flag" in (v or "") for v in variables)
        assert any("data" in (v or "") for v in variables)

    def test_annotation_suppresses_flag_and_data_races(self):
        module = build_adhoc_sync_module()
        raw, _ = run_tsan(module, seeds=range(6))
        flag_report = next(r for r in raw if "flag" in (r.variable or ""))
        read = next(a.instruction for a in flag_report.accesses()
                    if not a.is_write)
        write = next(a.instruction for a in flag_report.accesses()
                     if a.is_write)
        annotations = AnnotationSet([AdhocSyncAnnotation(read, write, "flag")])
        reduced, _ = run_tsan(module, seeds=range(6), annotations=annotations)
        # the markup orders the flag pair AND everything published through it
        assert len(reduced) == 0


class TestWatchList:
    def test_write_write_race_gets_subsequent_read(self):
        """Section 6.3: write-write races need a following load attached."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("w", I32, [("arg", ptr(I8))], source_file="ww.c")
        b.store(1, g, line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="ww.c")
        t1 = b.call("thread_create", [b.module.get_function("w"), b.null()],
                    line=3)
        t2 = b.call("thread_create", [b.module.get_function("w"), b.null()],
                    line=4)
        b.call("thread_join", [t1], line=5)
        b.call("thread_join", [t2], line=6)
        b.ret(b.load(g, line=7), line=7)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(8))
        ww = [r for r in reports if r.is_write_write()]
        assert ww
        report = ww[0]
        assert report.read_access() is not None
        assert report.read_access().instruction.opcode == "load"

    @staticmethod
    def _recurring_ww_module():
        """The same static ww race fires in two rounds, then main loads."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("w", I32, [("arg", ptr(I8))], source_file="dup.c")
        b.store(1, g, line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="dup.c")
        for round_line in (3, 10):
            t1 = b.call("thread_create",
                        [b.module.get_function("w"), b.null()],
                        line=round_line)
            t2 = b.call("thread_create",
                        [b.module.get_function("w"), b.null()],
                        line=round_line + 1)
            b.call("thread_join", [t1], line=round_line + 2)
            b.call("thread_join", [t2], line=round_line + 3)
        b.ret(b.load(g, line=20), line=20)
        b.end_function()
        verify_module(b.module)
        return b.module

    def test_duplicate_race_recurrence_feeds_watch_list(self):
        """A recurring duplicate of a reported race must keep watching the
        corrupted address: the subsequent load lands on the canonical
        (deduplicated) report, not on a dropped duplicate."""
        reports, _ = run_tsan(self._recurring_ww_module(), seeds=range(8))
        ww = [r for r in reports if r.is_write_write()]
        assert len(ww) == 1  # one static pair despite two racing rounds
        report = ww[0]
        reads = [a for a in report.subsequent_reads
                 if a.instruction.opcode == "load"]
        assert reads, "watch list lost the recurring race's subsequent read"

    @staticmethod
    def _overlap_module():
        """Two threads race on bytes 1..3 of an array; main reads the whole
        array through an I64 view at a *different base address*."""
        from repro.ir.types import ArrayType

        b = IRBuilder(Module("m"))
        arr = b.global_var("arr", ArrayType(I8, 8), None)
        b.begin_function("w", I32, [("arg", ptr(I8))], source_file="ov.c")
        slot = b.index(arr, 1, line=1)
        b.store(7, slot, line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="ov.c")
        t1 = b.call("thread_create", [b.module.get_function("w"), b.null()],
                    line=3)
        t2 = b.call("thread_create", [b.module.get_function("w"), b.null()],
                    line=4)
        b.call("thread_join", [t1], line=5)
        b.call("thread_join", [t2], line=6)
        wide = b.cast("bitcast", arr, ptr(I64), line=7)
        b.ret(b.load(wide, line=7), line=7)
        b.end_function()
        verify_module(b.module)
        return b.module

    def test_overlapping_wide_read_hits_watch(self):
        """A multi-byte read covering the corrupted byte at a different base
        address must still be recorded as the subsequent read (the watch
        list matches on byte overlap, not base-address equality)."""
        reports, _ = run_tsan(self._overlap_module(), seeds=range(8))
        ww = [r for r in reports if r.is_write_write()]
        assert ww
        report = ww[0]
        read = report.read_access()
        assert read is not None
        assert read.instruction.opcode == "load"
        # The read starts below the corrupted byte but spans across it.
        lo, hi = read.byte_range
        corrupted_lo, corrupted_hi = report.first.byte_range
        assert lo < corrupted_lo < hi
        assert hi - lo == 8

    def test_overlapping_write_sanitizes_watch(self):
        """A later write covering the corrupted bytes clears the watch, so
        loads after it are not attached."""
        from repro.ir.types import ArrayType

        b = IRBuilder(Module("m"))
        arr = b.global_var("arr", ArrayType(I8, 8), None)
        b.begin_function("w", I32, [("arg", ptr(I8))], source_file="sv.c")
        slot = b.index(arr, 1, line=1)
        b.store(7, slot, line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="sv.c")
        t1 = b.call("thread_create", [b.module.get_function("w"), b.null()],
                    line=3)
        t2 = b.call("thread_create", [b.module.get_function("w"), b.null()],
                    line=4)
        b.call("thread_join", [t1], line=5)
        b.call("thread_join", [t2], line=6)
        wide = b.cast("bitcast", arr, ptr(I64), line=7)
        b.store(0, wide, line=7)   # overwrites the racy byte: sanitized
        b.ret(b.load(wide, line=8), line=8)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(8))
        ww = [r for r in reports if r.is_write_write()]
        assert ww
        assert ww[0].read_access() is None

    def test_report_set_get_is_canonical(self):
        """ReportSet.get returns the deduplicated report for a static key."""
        reports, _ = run_tsan(self._recurring_ww_module(), seeds=range(8))
        for report in reports:
            assert reports.get(report.static_key) is report
        assert reports.get((-1, -1)) is None


class TestLocksetBaseline:
    def test_lockset_noisier_than_hb(self):
        """Eraser flags fork/join-ordered accesses HB exonerates."""
        b = IRBuilder(Module("m"))
        g = b.global_var("g", I64, 0)
        b.begin_function("child", I32, [("arg", ptr(I8))], source_file="l.c")
        b.store(1, g, line=1)
        b.ret(b.i32(0), line=2)
        b.end_function()
        b.begin_function("main", I64, [], source_file="l.c")
        t = b.call("thread_create", [b.module.get_function("child"), b.null()],
                   line=3)
        b.call("thread_join", [t], line=4)
        b.ret(b.load(g, line=5), line=5)
        b.end_function()
        verify_module(b.module)
        hb_reports, _ = run_tsan(b.module, seeds=range(4))
        lockset_reports = run_lockset(b.module, seeds=range(4))
        assert len(hb_reports) == 0
        assert len(lockset_reports) >= 1
