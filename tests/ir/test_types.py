"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    I1,
    I8,
    I32,
    I64,
    U64,
    VOID,
    ptr,
)


class TestIntType:
    def test_sizes(self):
        assert I8.size() == 1
        assert I32.size() == 4
        assert I64.size() == 8
        assert I1.size() == 1

    def test_signed_range(self):
        assert I32.min_value == -(1 << 31)
        assert I32.max_value == (1 << 31) - 1

    def test_unsigned_range(self):
        assert U64.min_value == 0
        assert U64.max_value == (1 << 64) - 1

    def test_wrap_signed_overflow(self):
        assert I32.wrap((1 << 31)) == -(1 << 31)
        assert I32.wrap(-1) == -1

    def test_wrap_unsigned_underflow(self):
        assert U64.wrap(-1) == (1 << 64) - 1
        assert U64.wrap(-2) == (1 << 64) - 2  # the Apache-46215 value

    def test_equality_and_hash(self):
        assert IntType(32) == I32
        assert IntType(32, signed=False) != I32
        assert hash(IntType(64)) == hash(I64)

    def test_str(self):
        assert str(I32) == "i32"
        assert str(U64) == "u64"

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(12)
        with pytest.raises(ValueError):
            IntType(0)


class TestPointerType:
    def test_size_is_word(self):
        assert ptr(I8).size() == 8
        assert ptr(ptr(I64)).size() == 8

    def test_equality(self):
        assert ptr(I32) == PointerType(I32)
        assert ptr(I32) != ptr(I64)

    def test_str(self):
        assert str(ptr(I8)) == "i8*"


class TestArrayType:
    def test_size(self):
        assert ArrayType(I8, 32).size() == 32
        assert ArrayType(I64, 4).size() == 32

    def test_zero_length(self):
        assert ArrayType(I8, 0).size() == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(I8, -1)

    def test_str(self):
        assert str(ArrayType(I8, 16)) == "[16 x i8]"


class TestStructType:
    def make(self):
        return StructType("buffered_log", [
            ("outcnt", I64),
            ("outbuf", ArrayType(I8, 32)),
            ("fd", I32),
        ])

    def test_packed_size(self):
        assert self.make().size() == 8 + 32 + 4

    def test_field_offsets(self):
        struct = self.make()
        assert struct.field_offset("outcnt") == 0
        assert struct.field_offset("outbuf") == 8
        assert struct.field_offset("fd") == 40

    def test_field_types(self):
        struct = self.make()
        assert struct.field_type("fd") == I32
        assert struct.field_type("outbuf") == ArrayType(I8, 32)

    def test_field_index(self):
        assert self.make().field_index("outbuf") == 1

    def test_field_at_offset(self):
        struct = self.make()
        assert struct.field_at_offset(0) == "outcnt"
        assert struct.field_at_offset(8) == "outbuf"
        assert struct.field_at_offset(39) == "outbuf"
        assert struct.field_at_offset(40) == "fd"
        assert struct.field_at_offset(44) is None

    def test_layout(self):
        assert self.make().layout() == [
            ("outcnt", 0, 8), ("outbuf", 8, 32), ("fd", 40, 4),
        ]

    def test_missing_field_raises(self):
        with pytest.raises(KeyError):
            self.make().field_offset("nope")

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            StructType("bad", [("a", I32), ("a", I64)])

    def test_equality_by_name(self):
        a = StructType("s", [("x", I32)])
        b = StructType("s", [("y", I64)])
        assert a == b  # nominal typing, like LLVM named structs


class TestFunctionType:
    def test_str(self):
        ftype = FunctionType(I32, [ptr(I8), I64])
        assert str(ftype) == "i32 (i8*, i64)"

    def test_varargs_str(self):
        ftype = FunctionType(I32, [ptr(I8)], varargs=True)
        assert "..." in str(ftype)

    def test_equality(self):
        assert FunctionType(VOID, []) == FunctionType(VOID, [])
        assert FunctionType(VOID, []) != FunctionType(VOID, [], varargs=True)


class TestVoidType:
    def test_size_zero(self):
        assert VOID.size() == 0

    def test_equality(self):
        assert VOID == VoidType()
