"""Tests for the IRBuilder DSL and Module container."""

import pytest

from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import FunctionType, I32, I64, I8, VOID, ptr


class TestBuilderFunctions:
    def test_begin_creates_entry_block(self):
        b = IRBuilder(Module("m"))
        f = b.begin_function("f", VOID, [], source_file="a.c")
        assert f.entry.name == "entry"
        assert b.block is f.entry

    def test_nested_begin_rejected(self):
        b = IRBuilder(Module("m"))
        b.begin_function("f", VOID, [], source_file="a.c")
        with pytest.raises(ValueError):
            b.begin_function("g", VOID, [])

    def test_end_requires_terminators(self):
        b = IRBuilder(Module("m"))
        b.begin_function("f", VOID, [], source_file="a.c")
        with pytest.raises(ValueError):
            b.end_function()

    def test_duplicate_function_rejected(self):
        b = IRBuilder(Module("m"))
        b.begin_function("f", VOID, [], source_file="a.c")
        b.ret_void()
        b.end_function()
        with pytest.raises(ValueError):
            b.begin_function("f", VOID, [])

    def test_arg_lookup(self):
        b = IRBuilder(Module("m"))
        b.begin_function("f", VOID, [("x", I32), ("y", I64)], source_file="a.c")
        assert b.arg("y").type == I64
        with pytest.raises(KeyError):
            b.arg("z")

    def test_branch_target_by_name_creates_block(self):
        b = IRBuilder(Module("m"))
        f = b.begin_function("f", VOID, [], source_file="a.c")
        b.br("later")
        assert any(block.name == "later" for block in f.blocks)
        b.at("later")
        b.ret_void()
        b.end_function()
        verify_module(b.module)

    def test_local_helper_stores_initializer(self):
        b = IRBuilder(Module("m"))
        b.begin_function("f", I32, [], source_file="a.c")
        slot = b.local(I32, "x", 9)
        value = b.load(slot)
        b.ret(value)
        b.end_function()
        # entry holds alloca + store + load + ret
        opcodes = [i.opcode for i in b.module.get_function("f").instructions()]
        assert opcodes == ["alloca", "store", "load", "ret"]


class TestBuilderGlobals:
    def test_global_var_has_pointer_type(self):
        b = IRBuilder(Module("m"))
        g = b.global_var("counter", I64, 0)
        assert g.type == ptr(I64)
        assert g.value_type == I64

    def test_global_string_nul_terminated(self):
        b = IRBuilder(Module("m"))
        g = b.global_string("msg", "hi")
        assert g.value_type.count == 3
        assert g.initializer == b"hi\x00"

    def test_duplicate_global_rejected(self):
        b = IRBuilder(Module("m"))
        b.global_var("g", I32)
        with pytest.raises(ValueError):
            b.global_var("g", I64)

    def test_extern_from_stdlib(self):
        b = IRBuilder(Module("m"))
        strcpy = b.extern("strcpy")
        assert strcpy.name == "strcpy"
        assert b.extern("strcpy") is strcpy  # idempotent

    def test_unknown_stdlib_extern_rejected(self):
        b = IRBuilder(Module("m"))
        b.begin_function("f", VOID, [], source_file="a.c")
        with pytest.raises(KeyError):
            b.call("no_such_function", [])


class TestModule:
    def make_module(self):
        b = IRBuilder(Module("m"))
        b.begin_function("f", I32, [], source_file="a.c")
        b.ret(b.i32(0), line=7)
        b.end_function()
        return b.module

    def test_get_function(self):
        module = self.make_module()
        assert module.get_function("f").name == "f"
        with pytest.raises(KeyError):
            module.get_function("g")

    def test_get_callable_covers_externals(self):
        module = self.make_module()
        module.declare_external("ext", FunctionType(VOID, []))
        assert module.get_callable("ext").name == "ext"

    def test_conflicting_external_redeclaration(self):
        module = self.make_module()
        module.declare_external("ext", FunctionType(VOID, []))
        with pytest.raises(ValueError):
            module.declare_external("ext", FunctionType(I32, []))

    def test_find_instructions_by_location(self):
        module = self.make_module()
        found = module.find_instructions(filename="a.c", line=7)
        assert len(found) == 1
        assert found[0].opcode == "ret"

    def test_find_instructions_by_opcode(self):
        module = self.make_module()
        assert module.find_instructions(opcode="ret")
        assert not module.find_instructions(opcode="load")

    def test_instruction_count(self):
        module = self.make_module()
        assert module.instruction_count() == 1
