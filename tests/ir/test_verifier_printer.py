"""Tests for the IR structural verifier and the textual printer."""

import pytest

from repro.ir import IRBuilder, Module, verify_module
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Br, Load, Ret
from repro.ir.printer import format_instruction, print_function, print_module
from repro.ir.types import FunctionType, I32, I64, VOID, ptr, I8
from repro.ir.values import ConstantInt
from repro.ir.verifier import IRVerificationError


def valid_module():
    b = IRBuilder(Module("ok"))
    b.begin_function("f", I32, [("x", I32)], source_file="v.c")
    b.ret(b.arg("x"), line=3)
    b.end_function()
    return b.module


class TestVerifier:
    def test_valid_module_passes(self):
        verify_module(valid_module())

    def test_missing_terminator_detected(self):
        module = Module("bad")
        f = Function("f", FunctionType(VOID, []))
        module.add_function(f)
        f.add_block("entry")
        with pytest.raises(IRVerificationError):
            verify_module(module)

    def test_void_function_returning_value(self):
        b = IRBuilder(Module("bad"))
        f = b.begin_function("f", VOID, [], source_file="v.c")
        ret = Ret(ConstantInt(I32, 1))
        f.entry.append(ret)
        b.function = None  # bypass end_function checks
        with pytest.raises(IRVerificationError):
            verify_module(b.module)

    def test_nonvoid_function_returning_nothing(self):
        b = IRBuilder(Module("bad"))
        f = b.begin_function("f", I32, [], source_file="v.c")
        f.entry.append(Ret(None))
        b.function = None
        with pytest.raises(IRVerificationError):
            verify_module(b.module)

    def test_use_before_definition_in_block(self):
        b = IRBuilder(Module("bad"))
        f = b.begin_function("f", I64, [("p", ptr(I64))], source_file="v.c")
        # Manually append a ret that uses a load defined after it.
        load = Load(b.arg("p"))
        ret = Ret(load)
        f.entry.append(ret)
        # Sneak the load into a second block that does not dominate entry.
        other = f.add_block("other")
        other.append(load)
        other.append(Ret(ConstantInt(I64, 0)))
        with pytest.raises(IRVerificationError):
            verify_module(b.module)

    def test_call_arity_mismatch(self):
        b = IRBuilder(Module("bad"))
        b.begin_function("f", VOID, [], source_file="v.c")
        strcpy = b.extern("strcpy")
        from repro.ir.instructions import Call

        bad_call = Call(strcpy, [b.null()])  # needs 2 args
        b.block.append(bad_call)
        b.ret_void()
        b.function = None
        with pytest.raises(IRVerificationError):
            verify_module(b.module)

    def test_terminator_mid_block_detected(self):
        b = IRBuilder(Module("bad"))
        f = b.begin_function("f", VOID, [], source_file="v.c")
        f.entry.instructions.append(Ret(None))   # bypass append() guard
        f.entry.instructions.append(Ret(None))
        with pytest.raises(IRVerificationError):
            verify_module(b.module)


class TestPrinter:
    def test_format_instruction_figure5_shape(self):
        module = valid_module()
        ret = next(module.get_function("f").instructions())
        text = format_instruction(ret)
        # "%N: ret %x (v.c:3)"
        assert text.startswith("%")
        assert "(v.c:3)" in text
        assert "ret" in text

    def test_print_function_contains_signature(self):
        module = valid_module()
        text = print_function(module.get_function("f"))
        assert "define i32 @f(i32 %x)" in text
        assert "entry:" in text

    def test_print_module_lists_globals_and_externals(self):
        b = IRBuilder(Module("m"))
        b.global_var("g", I64, 0)
        b.extern("malloc")
        b.begin_function("f", VOID, [], source_file="p.c")
        b.ret_void()
        b.end_function()
        text = print_module(b.module)
        assert "@g = global i64" in text
        assert "declare" in text and "@malloc" in text
        assert "; module m" in text

    def test_print_module_includes_structs(self):
        b = IRBuilder(Module("m"))
        b.struct("pair", [("a", I64), ("b", I32)])
        b.begin_function("f", VOID, [], source_file="p.c")
        b.ret_void()
        b.end_function()
        assert "%struct.pair = type { i64 a, i32 b }" in print_module(b.module)
