"""Unit tests for IR instructions and SSA value behaviour."""

import pytest

from repro.ir import IRBuilder, Module
from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Load,
    Ret,
    Store,
)
from repro.ir.types import FunctionType, I32, I64, I8, VOID, ptr
from repro.ir.values import ConstantInt, NullPointer


def fresh_builder():
    module = Module("t")
    b = IRBuilder(module)
    b.begin_function("f", I32, [("p", ptr(I64)), ("x", I64)], source_file="t.c")
    return module, b


class TestLoadStore:
    def test_load_type_follows_pointee(self):
        _, b = fresh_builder()
        load = b.load(b.arg("p"))
        assert load.type == I64
        assert load.pointer is b.arg("p")

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(ConstantInt(I64, 3))

    def test_store_has_no_value(self):
        _, b = fresh_builder()
        store = b.store(b.arg("x"), b.arg("p"))
        assert store.type == VOID
        assert store.value is b.arg("x")
        assert store.pointer is b.arg("p")

    def test_store_requires_pointer(self):
        with pytest.raises(TypeError):
            Store(ConstantInt(I64, 1), ConstantInt(I64, 2))

    def test_atomic_flag(self):
        _, b = fresh_builder()
        assert b.load(b.arg("p"), atomic=True).atomic
        assert not b.load(b.arg("p")).atomic


class TestBinOpICmp:
    def test_binop_result_type_is_lhs(self):
        _, b = fresh_builder()
        add = b.add(b.arg("x"), 1)
        assert add.type == I64

    def test_unknown_binop_rejected(self):
        _, b = fresh_builder()
        with pytest.raises(ValueError):
            BinOp("pow", b.arg("x"), b.arg("x"))

    def test_icmp_produces_i1(self):
        _, b = fresh_builder()
        cmp = b.icmp("slt", b.arg("x"), 5)
        assert cmp.type.bits == 1

    def test_unknown_predicate_rejected(self):
        _, b = fresh_builder()
        with pytest.raises(ValueError):
            ICmp("lt", b.arg("x"), b.arg("x"))

    def test_int_coercion_in_builder(self):
        _, b = fresh_builder()
        add = b.add(b.arg("x"), 41)
        assert isinstance(add.rhs, ConstantInt)
        assert add.rhs.value == 41


class TestBranch:
    def test_unconditional_successors(self):
        _, b = fresh_builder()
        target = b.add_block("next")
        br = b.br(target)
        assert br.successors() == [target]
        assert not br.is_conditional

    def test_conditional_needs_two_targets(self):
        _, b = fresh_builder()
        cond = b.icmp("eq", b.arg("x"), 0)
        with pytest.raises(ValueError):
            Br(cond, b.add_block("only"))

    def test_conditional_successors(self):
        _, b = fresh_builder()
        cond = b.icmp("eq", b.arg("x"), 0)
        br = b.cond_br(cond, "then", "else")
        assert len(br.successors()) == 2
        assert br.is_branch() and br.is_terminator()


class TestCall:
    def test_direct_call_type(self):
        module, b = fresh_builder()
        call = b.call("strlen", [b.null()])
        assert call.type == I64
        assert call.is_call()
        assert not call.is_indirect

    def test_indirect_call_through_function_pointer(self):
        _, b = fresh_builder()
        fn_ptr_type = ptr(FunctionType(VOID, []))
        value = b.cast("inttoptr", b.arg("x"), fn_ptr_type)
        call = b.call(value, [])
        assert call.is_indirect
        assert call.callee_name() == "<indirect>"

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            Call(ConstantInt(I64, 5), [])


class TestGEP:
    def test_field_gep_type(self):
        module = Module("t")
        b = IRBuilder(module)
        struct = b.struct("pair", [("a", I64), ("b", I32)])
        b.begin_function("f", VOID, [("p", ptr(struct))], source_file="t.c")
        gep = b.field(b.arg("p"), "b")
        assert gep.type == ptr(I32)
        b.ret_void()
        b.end_function()

    def test_index_gep_type(self):
        _, b = fresh_builder()
        gep = b.index(b.arg("p"), 2)
        assert gep.type == ptr(I64)

    def test_gep_requires_exactly_one_selector(self):
        _, b = fresh_builder()
        with pytest.raises(ValueError):
            GetElementPtr(b.arg("p"))

    def test_field_gep_requires_struct(self):
        _, b = fresh_builder()
        with pytest.raises(TypeError):
            GetElementPtr(b.arg("p"), field="a")


class TestCastAndRMW:
    def test_cast_kinds(self):
        _, b = fresh_builder()
        cast = b.cast("ptrtoint", b.arg("p"), I64)
        assert cast.type == I64

    def test_unknown_cast_rejected(self):
        _, b = fresh_builder()
        with pytest.raises(ValueError):
            Cast("reinterpret", b.arg("x"), I64)

    def test_atomicrmw_returns_old_type(self):
        _, b = fresh_builder()
        rmw = b.atomicrmw("add", b.arg("p"), 1)
        assert rmw.type == I64

    def test_unknown_rmw_rejected(self):
        _, b = fresh_builder()
        with pytest.raises(ValueError):
            AtomicRMW("max", b.arg("p"), ConstantInt(I64, 1))


class TestUidsAndLocations:
    def test_uids_assigned_on_module_registration(self):
        module, b = fresh_builder()
        load = b.load(b.arg("p"), line=5)
        assert load.uid is not None
        assert module.instruction_by_uid(load.uid) is load

    def test_uids_are_unique(self):
        module, b = fresh_builder()
        a = b.load(b.arg("p"))
        c = b.load(b.arg("p"))
        assert a.uid != c.uid

    def test_location_tracking(self):
        _, b = fresh_builder()
        b.set_location("file.c", 99)
        load = b.load(b.arg("p"))
        assert str(load.location) == "file.c:99"
        other = b.load(b.arg("p"), line=100)
        assert other.location.line == 100
