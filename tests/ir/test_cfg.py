"""Tests for CFG analyses: dominators, control dependence, loops."""

from repro.ir import IRBuilder, Module
from repro.ir.cfg import ControlFlowInfo, cfg_for
from repro.ir.types import I32, I64, VOID, ptr, I8


def build_diamond():
    """entry -> (then | else) -> join, plus return-per-arm variant."""
    b = IRBuilder(Module("m"))
    f = b.begin_function("f", I32, [("x", I32)], source_file="d.c")
    cond = b.icmp("eq", b.arg("x"), 0, line=1)
    b.cond_br(cond, "then", "else", line=2)
    b.at("then")
    then_call = b.call("getpid", [], line=3)
    b.br("join", line=3)
    b.at("else")
    else_call = b.call("getuid", [], line=4)
    b.br("join", line=4)
    b.at("join")
    b.ret(b.i32(0), line=5)
    b.end_function()
    return f, then_call, else_call


def build_loop():
    b = IRBuilder(Module("m"))
    g = b.global_var("flag", I32, 0)
    f = b.begin_function("spin", VOID, [], source_file="l.c")
    b.br("loop", line=1)
    b.at("loop")
    value = b.load(g, line=2)
    done = b.icmp("ne", value, 0, line=2)
    b.cond_br(done, "out", "loop", line=3)
    b.at("out")
    b.ret_void(line=4)
    b.end_function()
    return f


class TestDominators:
    def test_entry_dominates_all(self):
        f, _, _ = build_diamond()
        info = cfg_for(f)
        entry = f.entry
        for block in f.blocks:
            assert info.dominates(entry, block)

    def test_arms_do_not_dominate_join(self):
        f, _, _ = build_diamond()
        info = cfg_for(f)
        then = f.get_block("then")
        join = f.get_block("join")
        assert not info.dominates(then, join)

    def test_join_postdominates_arms(self):
        f, _, _ = build_diamond()
        info = cfg_for(f)
        join = f.get_block("join")
        assert info.postdominates(join, f.get_block("then"))
        assert info.postdominates(join, f.entry)

    def test_multiple_exits_postdominators_terminate(self):
        """Regression: two ret blocks must not hang the CHK intersection."""
        b = IRBuilder(Module("m"))
        f = b.begin_function("g", I32, [("x", I32)], source_file="e.c")
        cond = b.icmp("eq", b.arg("x"), 0)
        b.cond_br(cond, "a", "b")
        b.at("a")
        b.ret(b.i32(1))
        b.at("b")
        b.ret(b.i32(2))
        b.end_function()
        info = ControlFlowInfo(f)
        assert not info.postdominates(f.get_block("a"), f.get_block("b"))


class TestControlDependence:
    def test_arm_instructions_depend_on_branch(self):
        f, then_call, else_call = build_diamond()
        info = cfg_for(f)
        branch = f.entry.terminator
        assert info.is_control_dependent(then_call, branch)
        assert info.is_control_dependent(else_call, branch)

    def test_join_not_dependent(self):
        f, _, _ = build_diamond()
        info = cfg_for(f)
        branch = f.entry.terminator
        ret = f.get_block("join").instructions[-1]
        assert not info.is_control_dependent(ret, branch)

    def test_unconditional_branch_has_no_dependents(self):
        f, then_call, _ = build_diamond()
        info = cfg_for(f)
        uncond = f.get_block("then").terminator
        assert not info.is_control_dependent(then_call, uncond)

    def test_cross_function_is_false(self):
        f1, call1, _ = build_diamond()
        f2, _, _ = build_diamond()
        info = cfg_for(f1)
        assert not info.is_control_dependent(
            call1, f2.entry.terminator,
        )


class TestLoops:
    def test_loop_detected(self):
        f = build_loop()
        info = cfg_for(f)
        loop = info.loop_containing(f.get_block("loop"))
        assert loop is not None
        assert loop.header.name == "loop"

    def test_branch_exits_loop(self):
        f = build_loop()
        info = cfg_for(f)
        loop = info.loop_containing(f.get_block("loop"))
        branch = f.get_block("loop").terminator
        assert info.branch_exits_loop(branch, loop)

    def test_non_loop_block_not_in_loop(self):
        f = build_loop()
        info = cfg_for(f)
        assert info.loop_containing(f.get_block("out")) is None

    def test_loop_exit_edges(self):
        f = build_loop()
        info = cfg_for(f)
        loop = info.loop_containing(f.get_block("loop"))
        exits = loop.exit_edges()
        assert [(src.name, dst.name) for src, dst in exits] == [("loop", "out")]

    def test_nested_loop_innermost(self):
        b = IRBuilder(Module("m"))
        g = b.global_var("n", I64, 0)
        f = b.begin_function("nested", VOID, [], source_file="n.c")
        b.br("outer")
        b.at("outer")
        b.br("inner")
        b.at("inner")
        value = b.load(g, line=5)
        inner_done = b.icmp("sgt", value, 10, line=5)
        b.cond_br(inner_done, "outer_check", "inner", line=6)
        b.at("outer_check")
        outer_done = b.icmp("sgt", b.load(g, line=7), 100, line=7)
        b.cond_br(outer_done, "out", "outer", line=8)
        b.at("out")
        b.ret_void(line=9)
        b.end_function()
        info = cfg_for(f)
        inner_loop = info.loop_containing(f.get_block("inner"))
        assert inner_loop is not None
        # innermost loop around "inner" is smaller than the outer loop
        outer_loop_blocks = {
            block.name for block in info.loop_containing(f.get_block("outer_check")).blocks
        }
        assert "outer_check" in outer_loop_blocks


class TestCache:
    def test_cfg_for_caches(self):
        f = build_loop()
        assert cfg_for(f) is cfg_for(f)
