"""Tests for module cloning and undo-logged patching (repro.ir.patch).

The contract the repair engine relies on: a clone prints (and therefore
digests) identically to the original while preserving instruction uids; a
patch changes the digest — patched modules are distinct cache keys — and
``revert()`` restores the clone bit-for-bit.
"""

import pytest

from repro.apps.registry import all_specs, spec_by_name
from repro.ir.instructions import Load, Store
from repro.ir.patch import ModulePatcher, clone_module, ir_diff
from repro.ir.printer import print_module
from repro.ir.types import I64
from repro.ir.verifier import verify_module
from repro.owl.cache import ResultCache, module_digest
from repro.owl.repair import synthesize_mutex

APP_NAMES = [spec.name for spec in all_specs()]


def first_access_uid(module):
    """The lowest-uid non-atomic Load/Store — a generic mutex target."""
    uids = [
        instruction.uid
        for function in module.functions.values()
        for instruction in function.instructions()
        if isinstance(instruction, (Load, Store)) and not instruction.atomic
    ]
    assert uids, "no plain shared access in %s" % module.name
    return min(uids)


@pytest.mark.parametrize("name", APP_NAMES)
class TestCloneAllApps:
    def test_clone_prints_and_digests_identically(self, name):
        module = spec_by_name(name).build()
        clone = clone_module(module)
        assert print_module(clone) == print_module(module)
        assert module_digest(clone) == module_digest(module)

    def test_clone_is_verifier_clean(self, name):
        clone = clone_module(spec_by_name(name).build())
        verify_module(clone)

    def test_clone_preserves_uids(self, name):
        module = spec_by_name(name).build()
        clone = clone_module(module)
        for function in module.functions.values():
            for instruction in function.instructions():
                twin = clone.instruction_by_uid(instruction.uid)
                assert twin is not instruction
                assert twin.opcode == instruction.opcode
                assert twin.location == instruction.location

    def test_mutex_patch_is_verifier_clean(self, name):
        """Satellite: every app accepts a synthesized lock patch."""
        module = spec_by_name(name).build()
        clone = clone_module(module)
        uid = first_access_uid(clone)
        patcher = synthesize_mutex(clone, (uid, uid))
        assert patcher is not None
        verify_module(clone)
        assert ir_diff(module, clone)


@pytest.mark.parametrize("name", APP_NAMES)
class TestApplyRevertRoundTrip:
    def test_revert_restores_print_digest_and_uids(self, name):
        module = spec_by_name(name).build()
        clone = clone_module(module)
        before = print_module(clone)
        next_uid = clone._next_uid
        uid = first_access_uid(clone)
        patcher = synthesize_mutex(clone, (uid, uid))
        assert patcher is not None
        assert print_module(clone) != before
        assert module_digest(clone) != module_digest(module)
        patcher.revert()
        assert print_module(clone) == before
        assert module_digest(clone) == module_digest(module)
        assert clone._next_uid == next_uid
        verify_module(clone)


class TestPatcherJournal:
    def test_ops_record_every_edit_and_clear_on_revert(self):
        module = spec_by_name("libsafe").build()
        clone = clone_module(module)
        patcher = ModulePatcher(clone)
        patcher.add_global("repair_demo_lock", I64, 0)
        patcher.ensure_external("mutex_lock")
        assert len(patcher.ops) == 2
        patcher.revert()
        assert patcher.ops == []
        assert "repair_demo_lock" not in clone.globals

    def test_clone_edits_never_leak_to_original(self):
        module = spec_by_name("libsafe").build()
        before = print_module(module)
        clone = clone_module(module)
        uid = first_access_uid(clone)
        assert synthesize_mutex(clone, (uid, uid)) is not None
        assert print_module(module) == before


class TestPatchedCacheKeys:
    """Regression: a lock-insertion patch must change the detect cache key,
    or a warm cache would answer detector queries about the patched module
    with the unpatched module's reports — and the repair gates would lie."""

    def test_lock_insertion_changes_detect_key(self, tmp_path):
        module = spec_by_name("memcached").build()
        clone = clone_module(module)
        cache = ResultCache(str(tmp_path))
        key_original = cache.key("detect", module=module, seed=0)
        uid = first_access_uid(clone)
        assert synthesize_mutex(clone, (uid, uid)) is not None
        key_patched = cache.key("detect", module=clone, seed=0)
        assert key_patched != key_original

    def test_atomic_flip_changes_detect_key(self, tmp_path):
        """The realsync candidate only flips atomic flags — the flag must
        feed the printed IR (and hence the digest) for the same reason."""
        module = spec_by_name("libsafe").build()
        clone = clone_module(module)
        uid = first_access_uid(clone)
        patcher = ModulePatcher(clone)
        patcher.set_atomic(clone.instruction_by_uid(uid), True)
        cache = ResultCache(str(tmp_path))
        assert cache.key("detect", module=clone, seed=0) != \
            cache.key("detect", module=module, seed=0)

    def test_reverted_clone_keys_like_the_original(self, tmp_path):
        module = spec_by_name("memcached").build()
        clone = clone_module(module)
        uid = first_access_uid(clone)
        patcher = synthesize_mutex(clone, (uid, uid))
        patcher.revert()
        # fresh caches: module_key memoizes per object, and the point here
        # is the digest underneath, not the memo
        key_original = ResultCache(str(tmp_path)).key(
            "detect", module=module, seed=0)
        key_reverted = ResultCache(str(tmp_path)).key(
            "detect", module=clone, seed=0)
        assert key_reverted == key_original
