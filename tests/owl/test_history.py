"""Tests for the benchmark trajectory store and its regression gate."""

import json
import os
import subprocess
import sys

from repro.owl.history import (
    HISTORY_SCHEMA,
    append_record,
    default_history_path,
    git_revision,
    load_history,
    record_from_metrics,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
BENCH_REGRESS = os.path.join(REPO_ROOT, "tools", "bench_regress.py")


def sample_metrics(steps_per_second=100000.0, raw_reports=16):
    return {
        "schema": 6,
        "program": "memcached",
        "jobs": 1,
        "total_seconds": 1.5,
        "vm_steps": 18256,
        "stages": [
            {"name": "detect", "wall_seconds": 0.2,
             "steps_per_second": steps_per_second},
            {"name": "race_verification", "wall_seconds": 1.1,
             "steps_per_second": 0.0},
        ],
        "cache": {"hits": 30, "misses": 10, "stores": 10},
        "telemetry": {"counters": {
            "pipeline.raw_reports": raw_reports,
            "pipeline.remaining": 4,
            "pipeline.attacks": 0,
        }},
    }


def run_gate(path, *extra):
    return subprocess.run(
        [sys.executable, BENCH_REGRESS, "--history", str(path)] + list(extra),
        capture_output=True, text=True, cwd=REPO_ROOT)


class TestHistoryRecord:
    def test_record_carries_throughput_walls_and_counters(self):
        record = record_from_metrics(sample_metrics(), timestamp=123.0,
                                     git_rev="abc1234")
        assert record["schema"] == HISTORY_SCHEMA
        assert record["program"] == "memcached"
        assert record["timestamp"] == 123.0
        assert record["git_rev"] == "abc1234"
        assert record["steps_per_second"] == 100000.0
        assert record["stage_wall"]["race_verification"] == 1.1
        assert record["cache_hit_rate"] == 0.75
        assert record["counters"]["pipeline.raw_reports"] == 16

    def test_record_defaults_tolerate_missing_blocks(self):
        record = record_from_metrics({"schema": 1, "program": "x"},
                                     timestamp=0.0, git_rev=None)
        assert record["cache_hit_rate"] is None
        assert record["counters"] == {}
        assert record["steps_per_second"] == 0.0

    def test_git_revision_in_this_repo(self):
        revision = git_revision(cwd=REPO_ROOT)
        assert revision is None or len(revision) >= 7

    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        record = record_from_metrics(sample_metrics(), timestamp=1.0,
                                     git_rev="abc")
        append_record(record, path)
        append_record(record, path)
        with open(path, "a") as handle:
            handle.write("{torn")  # a crash mid-append must not poison reads
        assert load_history(path) == [record, record]

    def test_default_path_is_under_out_dir(self):
        assert default_history_path("benchmarks/out").endswith(
            os.path.join("benchmarks", "out", "history.jsonl"))


class TestBenchRegressGate:
    def write_history(self, path, rates, raw_reports=None, revs=None):
        for index, rate in enumerate(rates):
            metrics = sample_metrics(
                steps_per_second=rate,
                raw_reports=(raw_reports[index] if raw_reports else 16))
            record = record_from_metrics(
                metrics, timestamp=float(index),
                git_rev=(revs[index] if revs else "abc1234"))
            append_record(record, str(path))

    def test_exit_1_on_thirty_percent_regression(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.write_history(path, [1000.0, 1050.0, 980.0, 700.0])
        completed = run_gate(path)
        assert completed.returncode == 1
        assert "FAIL" in completed.stdout
        assert "-30.0%" in completed.stdout

    def test_exit_0_within_budget(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.write_history(path, [1000.0, 1050.0, 980.0, 990.0])
        completed = run_gate(path)
        assert completed.returncode == 0
        assert "PASS" in completed.stdout

    def test_report_only_swallows_failure(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.write_history(path, [1000.0, 700.0])
        completed = run_gate(path, "--report-only")
        assert completed.returncode == 0
        assert "ignored" in completed.stdout

    def test_parity_drift_at_same_revision_fails(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.write_history(path, [1000.0, 1000.0], raw_reports=[16, 20])
        completed = run_gate(path)
        assert completed.returncode == 1
        assert "DRIFT" in completed.stdout

    def test_counter_change_across_revisions_passes(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.write_history(path, [1000.0, 1000.0], raw_reports=[16, 20],
                           revs=["aaaa111", "bbbb222"])
        completed = run_gate(path)
        assert completed.returncode == 0
        assert "review" in completed.stdout

    def test_missing_history_is_not_an_error(self, tmp_path):
        completed = run_gate(tmp_path / "absent.jsonl")
        assert completed.returncode == 0
        assert "nothing to gate" in completed.stdout

    def test_single_record_is_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.write_history(path, [1000.0])
        completed = run_gate(path)
        assert completed.returncode == 0
        assert "SKIP" in completed.stdout

    def test_custom_threshold(self, tmp_path):
        path = tmp_path / "history.jsonl"
        self.write_history(path, [1000.0, 900.0])
        assert run_gate(path, "--max-regression", "5").returncode == 1
        assert run_gate(path, "--max-regression", "15").returncode == 0
