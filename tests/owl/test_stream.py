"""Tests for the live run feed (repro.owl.stream) and its CLI surface."""

import json
import threading
import time

from repro.owl.stream import (
    EventFeed,
    feed_path,
    follow_feed,
    read_feed,
    render_event,
)


class TestEventFeed:
    def test_events_are_sequenced_json_lines(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        feed = EventFeed(path)
        feed.run_begin("memcached", 2, explore=True)
        feed.seed_done(stage="detect", seed=0, steps=1551, reports=16)
        feed.run_end(raw_reports=16, remaining=4, attacks=0)
        events = read_feed(path)
        assert [e["event"] for e in events] == [
            "run_begin", "seed_done", "run_end"]
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[0]["program"] == "memcached"
        assert all("wall" in e for e in events)

    def test_open_truncates_stale_feed(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        EventFeed(path).run_begin("old", 1)
        feed = EventFeed(path)
        feed.run_begin("new", 1)
        feed.close()
        events = read_feed(path)
        assert len(events) == 1
        assert events[0]["program"] == "new"

    def test_emit_after_close_is_a_no_op(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        feed = EventFeed(path)
        feed.run_begin("demo", 1)
        feed.close()
        feed.seed_done(seed=0)  # must not raise or write
        assert len(read_feed(path)) == 1

    def test_read_feed_skips_torn_final_line(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        feed = EventFeed(path)
        feed.run_begin("demo", 1)
        feed.close()
        with open(path, "a") as handle:
            handle.write('{"event": "seed_done", "se')  # writer died here
        events = read_feed(path)
        assert [e["event"] for e in events] == ["run_begin"]

    def test_read_feed_missing_file_is_empty(self, tmp_path):
        assert read_feed(str(tmp_path / "absent.jsonl")) == []

    def test_feed_path_is_per_program(self, tmp_path):
        assert feed_path(str(tmp_path), "apache").endswith(
            "feed_apache.jsonl")


class TestFollowFeed:
    def test_follow_sees_events_written_after_attach(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")

        def writer():
            time.sleep(0.05)
            feed = EventFeed(path)
            feed.run_begin("demo", 1)
            feed.seed_done(seed=0)
            time.sleep(0.05)
            feed.run_end(raw_reports=1, remaining=0, attacks=0)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            events = list(follow_feed(path, poll=0.01, timeout=5.0))
        finally:
            thread.join()
        assert [e["event"] for e in events] == [
            "run_begin", "seed_done", "run_end"]

    def test_follow_times_out_on_quiet_feed(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        feed = EventFeed(path)
        feed.run_begin("demo", 1)
        feed.close()
        events = list(follow_feed(path, poll=0.01, timeout=0.1))
        assert [e["event"] for e in events] == ["run_begin"]


class TestRenderEvent:
    def test_known_events_render_one_line(self):
        lines = [
            render_event({"event": "run_begin", "program": "apache",
                          "jobs": 2, "explore": True}),
            render_event({"event": "stage_begin", "stage": "detect"}),
            render_event({"event": "seed_done", "seed": 3,
                          "detector": "tsan", "steps": 900, "reports": 2,
                          "cached": True}),
            render_event({"event": "wave_done", "index": 1,
                          "seeds": [4, 5], "scheduler": "pct", "depth": 3,
                          "new_pairs": 0, "total_pairs": 21, "dry": True}),
            render_event({"event": "run_end", "raw_reports": 16,
                          "remaining": 4, "attacks": 1}),
        ]
        assert all(isinstance(line, str) and line for line in lines)
        assert "apache" in lines[0] and "explore" in lines[0]
        assert "[cached]" in lines[2]
        assert "[dry]" in lines[3]

    def test_unknown_event_renders_nothing(self):
        assert render_event({"event": "mystery"}) is None


class TestPipelineFeed:
    def test_pipeline_streams_begin_stages_seeds_end(self, tmp_path):
        from repro.apps.registry import spec_by_name
        from repro.owl.pipeline import OwlPipeline

        path = str(tmp_path / "feed.jsonl")
        OwlPipeline(spec_by_name("memcached"), feed=EventFeed(path)).run()
        events = read_feed(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_begin" and kinds[-1] == "run_end"
        assert kinds.count("stage_begin") == kinds.count("stage_end") == 5
        assert kinds.count("seed_done") > 0
        stage_names = [e["stage"] for e in events
                       if e["event"] == "stage_begin"]
        assert stage_names[0] == "detect"
        # every line is valid JSON with a seq gap-free ordering
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_watch_cli_renders_completed_feed(self, tmp_path, capsys):
        from repro.apps.registry import spec_by_name
        from repro.cli import main
        from repro.owl.pipeline import OwlPipeline

        path = str(tmp_path / "feed.jsonl")
        OwlPipeline(spec_by_name("memcached"), feed=EventFeed(path)).run()
        assert main(["watch", path, "--timeout", "2"]) == 0
        out = capsys.readouterr().out
        assert "run memcached" in out
        assert "run complete" in out

    def test_status_cli_summarizes_feeds(self, tmp_path, capsys):
        from repro.apps.registry import spec_by_name
        from repro.cli import main
        from repro.owl.pipeline import OwlPipeline

        spec = spec_by_name("memcached")
        OwlPipeline(spec, feed=EventFeed(
            feed_path(str(tmp_path), spec.name))).run()
        assert main(["status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "memcached" in out and "complete" in out

    def test_status_cli_fails_without_feeds(self, tmp_path):
        from repro.cli import main

        assert main(["status", str(tmp_path)]) == 1
