"""Tests for hint formatting, detector integration and result export."""

import json

import pytest

from repro.detectors import run_tsan
from repro.detectors.report import AccessRecord, RaceReport, ReportSet
from repro.owl.hints import (
    format_call_stack,
    format_full_report,
    format_vulnerability_report,
)
from repro.owl.integration import run_detector, usable_reports
from repro.owl.vuln_analysis import VulnerabilityAnalyzer
from tests.helpers import build_counter_race


def counter_report_and_vuln():
    from repro.apps.libsafe import build_module, workload_inputs

    module = build_module()
    reports, _ = run_tsan(module, inputs=workload_inputs(), seeds=range(8))
    report = next(r for r in reports if "dying" in (r.variable or ""))
    vulns = VulnerabilityAnalyzer(module).analyze_report(report)
    return module, report, vulns[0]


class TestHints:
    def test_call_stack_innermost_first(self):
        stack = (("main", "m.c", 1), ("worker", "w.c", 2))
        text = format_call_stack(stack)
        assert text.splitlines() == ["worker (w.c:2)", "main (m.c:1)"]

    def test_data_dep_header(self):
        module = build_counter_race(iterations=2)
        reports, _ = run_tsan(module, seeds=range(6))
        # craft a DATA_DEP vulnerability via the libsafe logger path instead
        _, _, vuln = counter_report_and_vuln()
        text = format_vulnerability_report(vuln)
        assert "Vulnerability----" in text
        assert "Vulnerable Site Type:" in text

    def test_full_report_combines_both(self):
        _, _, vuln = counter_report_and_vuln()
        text = format_full_report(vuln)
        assert "stack_check" in text
        assert "Vulnerable Site Location:" in text


class TestIntegration:
    def test_run_detector_dispatch_tsan(self):
        from repro.apps.libsafe import libsafe_spec

        reports, results = run_detector(libsafe_spec())
        assert len(reports) == 3
        assert results

    def test_run_detector_dispatch_ski(self):
        from repro.apps.linux_proc import linux_proc_spec

        spec = linux_proc_spec(noise=False)
        reports, _ = run_detector(spec)
        assert any("cap_effective" in (r.variable or "") for r in reports)

    def test_usable_reports_filters_loadless(self):
        module = build_counter_race(iterations=2)
        reports, _ = run_tsan(module, seeds=range(6))
        store = next(
            i for i in module.get_function("worker").instructions()
            if i.opcode == "store" and i.location.line == 13
        )
        loadless = RaceReport(
            AccessRecord(store, 1, True, 0, (), 0x1),
            AccessRecord(store, 2, True, 0, (), 0x1),
        )
        collection = ReportSet()
        collection.add(loadless)
        assert usable_reports(collection) == []
        assert len(usable_reports(reports)) >= 1


class TestExport:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        from repro.apps.libsafe import libsafe_spec
        from repro.owl.export import result_to_dict, save_result
        from repro.owl.pipeline import OwlPipeline

        result = OwlPipeline(libsafe_spec()).run()
        data = result_to_dict(result)
        path = tmp_path_factory.mktemp("export") / "libsafe.json"
        save_result(result, str(path))
        return data, path

    def test_counters_present(self, exported):
        data, _ = exported
        assert data["program"] == "libsafe"
        assert data["counters"]["raw_reports"] == 3

    def test_vulnerabilities_carry_hints(self, exported):
        data, _ = exported
        sites = {v["site"] for v in data["vulnerabilities"]}
        assert "intercept.c:165" in sites
        hint = next(v for v in data["vulnerabilities"]
                    if v["site"] == "intercept.c:165")
        assert "Ctrl Dependent" in hint["hint_text"]
        assert hint["branches"] == ["intercept.c:164"]

    def test_attacks_marked_realized(self, exported):
        data, _ = exported
        realized = [a for a in data["attacks"] if a["realized"]]
        assert any(a["ground_truth"] == "libsafe-2.0-16" for a in realized)

    def test_file_round_trips(self, exported):
        data, path = exported
        assert json.loads(path.read_text()) == data

    def test_reports_have_stacks(self, exported):
        data, _ = exported
        for report in data["remaining_reports"]:
            assert report["first"]["call_stack"]
            assert report["second"]["call_stack"]
