"""Tests for the dynamic race verifier and the vulnerability verifier."""

from repro.apps.libsafe import build_module as build_libsafe
from repro.apps.libsafe import exploit_inputs, libsafe_spec, workload_inputs
from repro.detectors import run_tsan
from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, U64, ptr
from repro.owl.race_verifier import DynamicRaceVerifier
from repro.owl.vuln_analysis import VulnerabilityAnalyzer
from repro.owl.vuln_verifier import DynamicVulnerabilityVerifier
from repro.spec import ProgramSpec
from tests.helpers import build_counter_race


class TestRaceVerifier:
    def test_real_race_verified_with_hints(self):
        module = build_counter_race(iterations=3)
        reports, _ = run_tsan(module, seeds=range(6))
        report = next(iter(reports))
        verifier = DynamicRaceVerifier(module, seeds=range(6))
        verification = verifier.verify(report)
        assert verification.verified
        hints = verification.hints
        assert hints is not None
        assert "counter" in (hints.variable or "")
        assert hints.write_value is not None

    def test_verified_report_tagged(self):
        module = build_counter_race(iterations=3)
        reports, _ = run_tsan(module, seeds=range(6))
        report = next(iter(reports))
        DynamicRaceVerifier(module, seeds=range(6)).verify(report)
        assert DynamicRaceVerifier.TAG in report.tags

    def test_null_write_hint(self):
        """The hint flags a NULL store: 'whether a NULL pointer difference
        can be triggered ... because of the race' (section 5.2)."""
        b = IRBuilder(Module("m"))
        pointer = b.global_var("p", U64, 0x1234)
        b.begin_function("reader", I64, [("arg", ptr(I8))], source_file="n.c")
        b.ret(b.load(pointer, line=1), line=1)
        b.end_function()
        b.begin_function("nuller", I32, [("arg", ptr(I8))], source_file="n.c")
        b.store(0, pointer, line=2)
        b.ret(b.i32(0), line=3)
        b.end_function()
        b.begin_function("main", I32, [], source_file="n.c")
        t1 = b.call("thread_create", [b.module.get_function("reader"),
                                      b.null()], line=4)
        t2 = b.call("thread_create", [b.module.get_function("nuller"),
                                      b.null()], line=5)
        b.call("thread_join", [t1], line=6)
        b.call("thread_join", [t2], line=7)
        b.ret(b.i32(0), line=8)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(6))
        report = next(iter(reports))
        verification = DynamicRaceVerifier(b.module, seeds=range(6)).verify(report)
        assert verification.verified
        assert verification.hints.null_write

    def test_publish_race_eliminated(self):
        """The racy-publish pattern can never co-halt on one address."""
        from repro.apps.support import add_publish_races

        b = IRBuilder(Module("m"))
        producer, consumer = add_publish_races(b, 1, "pub.c", iterations=3)
        b.begin_function("main", I32, [], source_file="pub.c")
        t1 = b.call("thread_create", [b.module.get_function(producer),
                                      b.null()], line=1)
        t2 = b.call("thread_create", [b.module.get_function(consumer),
                                      b.null()], line=2)
        b.call("thread_join", [t1], line=3)
        b.call("thread_join", [t2], line=4)
        b.ret(b.i32(0), line=5)
        b.end_function()
        verify_module(b.module)
        reports, _ = run_tsan(b.module, seeds=range(10))
        assert len(reports) >= 1
        verifier = DynamicRaceVerifier(b.module, seeds=range(4))
        for report in reports:
            assert not verifier.verify(report).verified

    def test_libsafe_dying_race_verified(self):
        module = build_libsafe()
        reports, _ = run_tsan(module, inputs=workload_inputs(), seeds=range(8))
        report = next(r for r in reports if "dying" in (r.variable or ""))
        verifier = DynamicRaceVerifier(module, inputs=workload_inputs(),
                                       seeds=range(8))
        verification = verifier.verify(report)
        assert verification.verified
        assert verification.hints.write_value == 1  # dying = 1


class TestVulnVerifier:
    def _libsafe_vuln(self):
        module = build_libsafe()
        reports, _ = run_tsan(module, inputs=workload_inputs(), seeds=range(8))
        report = next(r for r in reports if "dying" in (r.variable or ""))
        vulns = VulnerabilityAnalyzer(module).analyze_report(report)
        return module, vulns[0]

    def test_attack_realized_with_subtle_inputs(self):
        module, vuln = self._libsafe_vuln()
        spec = libsafe_spec()
        attack = spec.attacks[0]
        # NOTE: the verifier must execute the *same module instance* the
        # analyzer produced the report for (instruction identity is the
        # breakpoint key), so no spec-based vm_factory here.
        verifier = DynamicVulnerabilityVerifier(
            module, inputs=attack.subtle_inputs, seeds=range(10),
            attack_predicate=lambda vm: vm.world.executed("/bin/sh"),
            racing_order=("write-first", ""),
        )
        outcome = verifier.verify(vuln)
        assert outcome.attack_realized
        assert outcome.site_reached

    def test_naive_inputs_do_not_realize(self):
        module, vuln = self._libsafe_vuln()
        spec = libsafe_spec()
        attack = spec.attacks[0]
        verifier = DynamicVulnerabilityVerifier(
            module, inputs=attack.naive_inputs, seeds=range(4),
            attack_predicate=lambda vm: vm.world.executed("/bin/sh"),
        )
        outcome = verifier.verify(vuln)
        assert not outcome.attack_realized

    def test_describe_mentions_state(self):
        module, vuln = self._libsafe_vuln()
        spec = libsafe_spec()
        attack = spec.attacks[0]
        verifier = DynamicVulnerabilityVerifier(
            module, inputs=attack.subtle_inputs, seeds=range(10),
            attack_predicate=lambda vm: vm.world.executed("/bin/sh"),
        )
        outcome = verifier.verify(vuln)
        assert "REALIZED" in outcome.describe()
