"""Tests for the parallel batch engine (repro.owl.batch) and its metrics.

The contract under test: fanning work out over worker processes changes
wall-clock behaviour only — every report, counter and verification outcome
is bit-identical to the serial run on the same seeds.
"""

import json
import os

from repro.apps.registry import spec_by_name
from repro.owl.batch import (
    can_parallelize,
    make_executor,
    report_from_payload,
    report_to_payload,
    run_detector_batch,
    run_detectors_batch,
    verify_races_batch,
)
from repro.owl.integration import run_detector
from repro.owl.pipeline import OwlPipeline
from repro.runtime.metrics import (
    PipelineMetrics,
    RunStats,
    StageMetrics,
    metrics_path,
)
from repro.spec import ProgramSpec


def _report_fingerprint(report):
    return (
        report.static_key,
        report.variable,
        report.first.thread_id,
        report.second.thread_id,
        report.first.value,
        report.second.value,
        tuple(a.instruction.uid for a in report.subsequent_reads),
    )


def _fingerprints(reports):
    return [_report_fingerprint(report) for report in reports]


class TestPayloads:
    def test_report_round_trip(self):
        spec = spec_by_name("libsafe")
        reports, _ = run_detector(spec)
        assert len(reports) > 0
        rebuilt_module = spec.build()  # deterministic: same uids
        for report in reports:
            payload = report_to_payload(report)
            clone = report_from_payload(rebuilt_module, payload)
            assert _report_fingerprint(clone) == _report_fingerprint(report)
            assert clone.first.instruction.uid == report.first.instruction.uid
            assert clone.first.call_stack == report.first.call_stack
            assert clone.first.byte_range == report.first.byte_range


class TestDetectorParity:
    def test_parallel_detect_matches_serial(self):
        spec = spec_by_name("libsafe")
        serial, serial_stats = run_detector_batch(spec)
        parallel, parallel_stats = run_detector_batch(spec, jobs=2)
        assert _fingerprints(parallel) == _fingerprints(serial)
        assert [s.seed for s in parallel_stats] == [s.seed for s in serial_stats]
        assert [s.steps for s in parallel_stats] == [s.steps for s in serial_stats]
        assert [s.reports for s in parallel_stats] == [
            s.reports for s in serial_stats]

    def test_multi_program_batch(self):
        specs = [spec_by_name("libsafe"), spec_by_name("ssdb")]
        results = run_detectors_batch(specs, jobs=2)
        for spec in specs:
            serial, _ = run_detector_batch(spec)
            reports, stats = results[spec.name]
            assert _fingerprints(reports) == _fingerprints(serial)
            assert len(stats) == len(list(spec.detect_seeds))

    def test_race_verification_parity(self):
        # Serial verification works on instruction *identity*, so detect and
        # verify must share one spec instance (as the pipeline does); the
        # parallel path rehydrates by uid in the workers.
        spec = spec_by_name("libsafe")
        reports, _ = run_detector(spec)
        serial = verify_races_batch(spec, list(reports))
        spec2 = spec_by_name("libsafe")
        reports2, _ = run_detector(spec2)
        parallel = verify_races_batch(spec2, list(reports2), jobs=2)
        assert [v.verified for v in parallel] == [v.verified for v in serial]
        assert [v.runs_used for v in parallel] == [v.runs_used for v in serial]


class TestPipelineParity:
    def test_parallel_pipeline_counters_identical(self):
        serial = OwlPipeline(spec_by_name("libsafe")).run()
        parallel = OwlPipeline(spec_by_name("libsafe"), jobs=2).run()
        assert parallel.counters.parity_dict() == serial.counters.parity_dict()
        assert (
            [a.realized for a in parallel.attacks]
            == [a.realized for a in serial.attacks]
        )
        assert (
            [t.attack_id for t in parallel.detected_ground_truths()]
            == [t.attack_id for t in serial.detected_ground_truths()]
        )

    def test_unregistered_spec_falls_back_to_serial(self):
        base = spec_by_name("libsafe")
        clone = ProgramSpec(
            name="not-in-registry",
            module_factory=base.module_factory,
            detector=base.detector,
            entry=base.entry,
            workload_inputs=base.workload_inputs,
            detect_seeds=base.detect_seeds,
            verify_seeds=base.verify_seeds,
            max_steps=base.max_steps,
            attacks=base.attacks,
        )
        assert can_parallelize(base)
        assert not can_parallelize(clone)
        result = OwlPipeline(clone, jobs=4).run()
        assert result.metrics.jobs == 1  # silently serial
        assert result.counters.raw_reports > 0

    def test_shared_executor_reuse(self):
        spec = spec_by_name("libsafe")
        executor = make_executor(2)
        try:
            first, _ = run_detector_batch(spec, executor=executor)
            second, _ = run_detector_batch(spec, executor=executor)
        finally:
            executor.shutdown()
        assert _fingerprints(first) == _fingerprints(second)


class TestMetrics:
    def test_pipeline_metrics_recorded(self):
        result = OwlPipeline(spec_by_name("libsafe")).run()
        metrics = result.metrics
        assert metrics is not None
        assert [stage.name for stage in metrics.stages] == [
            "detect", "schedule_reduction", "race_verification",
            "vulnerability_analysis", "vulnerability_verification",
        ]
        detect = metrics.stage_by_name("detect")
        assert detect.runs == len(list(result.spec.detect_seeds))
        assert detect.vm_steps > 0
        assert detect.accesses > 0
        assert metrics.total_seconds > 0
        assert metrics.vm_steps >= detect.vm_steps

    def test_metrics_json_schema(self, tmp_path):
        result = OwlPipeline(spec_by_name("libsafe"), jobs=2).run()
        path = metrics_path(str(tmp_path), "libsafe")
        assert result.metrics.save(path) == path
        with open(path) as handle:
            data = json.load(handle)
        assert data["program"] == "libsafe"
        assert data["jobs"] == 2
        assert data["total_seconds"] > 0
        for stage in data["stages"]:
            for key in ("name", "wall_seconds", "items", "unit", "runs",
                        "vm_steps", "accesses", "steps_per_second",
                        "items_per_second"):
                assert key in stage, stage["name"]
        assert os.path.basename(path) == "metrics_libsafe.json"

    def test_run_stats_absorption(self):
        stage = StageMetrics("detect", unit="reports")
        stage.absorb_run_stats([
            RunStats(0, "exit", steps=100, accesses=10, reports=1,
                     wall_seconds=0.5),
            RunStats(1, "exit", steps=200, accesses=30, reports=2,
                     wall_seconds=0.5),
        ])
        assert stage.runs == 2
        assert stage.vm_steps == 300
        assert stage.accesses == 40
        stage.wall_seconds = 2.0
        stage.items = 3
        assert stage.steps_per_second == 150.0
        assert stage.items_per_second == 1.5

    def test_describe_lists_every_stage(self):
        metrics = PipelineMetrics("demo", jobs=3)
        with metrics.stage("detect"):
            pass
        text = metrics.describe()
        assert "demo" in text and "jobs=3" in text and "detect" in text
