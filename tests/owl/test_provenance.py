"""Tests for report provenance, pipeline span traces, and the CLI around them."""

import json

import pytest

from repro.cli import main
from repro.owl.export import result_to_dict
from repro.owl.pipeline import OwlPipeline
from repro.owl.provenance import (
    DISPOSITION_ATTACK,
    DISPOSITION_PRUNED_ADHOC,
    DISPOSITION_UNVERIFIED,
    DISPOSITION_VERIFIED_BENIGN,
    ReportProvenance,
)

ALL_DISPOSITIONS = {
    DISPOSITION_PRUNED_ADHOC, DISPOSITION_UNVERIFIED,
    DISPOSITION_VERIFIED_BENIGN, DISPOSITION_ATTACK,
}


@pytest.fixture(scope="module")
def libsafe_result():
    from repro.apps.libsafe import libsafe_spec

    return OwlPipeline(libsafe_spec()).run()


@pytest.fixture(scope="module")
def uselib_result():
    from repro import spec_by_name

    return OwlPipeline(spec_by_name("linux_uselib")).run()


class TestDispositions:
    def test_every_report_gets_a_record(self, uselib_result):
        assert len(uselib_result.provenance) == \
            uselib_result.counters.raw_reports

    def test_every_disposition_is_terminal(self, uselib_result):
        for record in uselib_result.provenance:
            assert record.disposition in ALL_DISPOSITIONS

    def test_disposition_counts_match_stage_counters(self, uselib_result):
        provenance = uselib_result.provenance
        counters = uselib_result.counters
        assert len(provenance.by_disposition(DISPOSITION_PRUNED_ADHOC)) == \
            counters.raw_reports - counters.after_annotation
        assert len(provenance.by_disposition(DISPOSITION_UNVERIFIED)) == \
            counters.verifier_eliminated
        kept = (len(provenance.by_disposition(DISPOSITION_VERIFIED_BENIGN))
                + len(provenance.by_disposition(DISPOSITION_ATTACK)))
        assert kept == counters.remaining

    def test_attack_disposition_for_realized_attack(self, libsafe_result):
        attacked = libsafe_result.provenance.by_disposition(DISPOSITION_ATTACK)
        assert attacked
        realized_sources = {
            attack.vulnerability.source.uid
            for attack in libsafe_result.realized_attacks()
            if attack.vulnerability.source is not None
        }
        assert {record.uid for record in attacked} == realized_sources

    def test_precedence_attack_trumps_everything(self, libsafe_result):
        report = list(libsafe_result.raw_reports)[0]
        record = ReportProvenance(report)
        record.record("race_verification", "verified")
        record.record("vulnerability_verification", "attack-realized")
        assert record.disposition == DISPOSITION_ATTACK

    def test_precedence_adhoc_prune_beats_verified(self, libsafe_result):
        report = list(libsafe_result.raw_reports)[0]
        record = ReportProvenance(report)
        record.record("schedule_reduction", "pruned-adhoc")
        record.record("race_verification", "verified")
        assert record.disposition == DISPOSITION_PRUNED_ADHOC

    def test_no_decisions_means_unverified(self, libsafe_result):
        record = ReportProvenance(list(libsafe_result.raw_reports)[0])
        assert record.disposition == DISPOSITION_UNVERIFIED


class TestNarratives:
    def test_attack_narrative_has_hints_and_evidence(self, libsafe_result):
        record = libsafe_result.provenance.by_disposition(
            DISPOSITION_ATTACK)[0]
        text = record.narrative()
        assert record.uid in text
        assert "racing on" in text            # verifier security hints
        assert "[vulnerability_analysis] site-reached" in text
        assert "attack REALIZED" in text
        assert "disposition: attack" in text

    def test_pruned_narrative_names_the_adhoc_sync(self, uselib_result):
        record = uselib_result.provenance.by_disposition(
            DISPOSITION_PRUNED_ADHOC)[0]
        text = record.narrative()
        assert "adhoc sync on" in text
        assert "disposition: pruned-adhoc" in text

    def test_summary_lists_every_uid(self, uselib_result):
        summary = uselib_result.provenance.summary()
        for uid in uselib_result.provenance.uids():
            assert uid in summary


class TestProvenanceExport:
    def test_save_round_trips(self, libsafe_result, tmp_path):
        path = str(tmp_path / "provenance_libsafe.json")
        libsafe_result.provenance.save(path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["schema"] == 1
        assert data["program"] == "libsafe"
        assert sum(data["dispositions"].values()) == len(data["reports"])
        for report in data["reports"]:
            assert report["disposition"] in ALL_DISPOSITIONS

    def test_result_to_dict_includes_provenance_and_uids(self, libsafe_result):
        data = result_to_dict(libsafe_result)
        assert data["provenance"]["program"] == "libsafe"
        for report in data["remaining_reports"]:
            assert report["uid"].startswith("r")


class TestSpanParityAcrossJobs:
    def test_structure_identical_serial_vs_parallel(self):
        from repro import spec_by_name

        serial = OwlPipeline(spec_by_name("apache_log")).run(jobs=1)
        parallel = OwlPipeline(spec_by_name("apache_log")).run(jobs=2)
        assert serial.spans.structure() == parallel.spans.structure()
        assert serial.provenance.as_dict()["reports"] == \
            parallel.provenance.as_dict()["reports"]

    def test_pipeline_root_covers_the_stages(self, libsafe_result):
        structure = libsafe_result.spans.structure()
        assert [name for name, _ in structure] == ["pipeline"]
        stage_names = [name for name, _ in structure[0][1]]
        assert stage_names == [
            "stage:detect", "stage:schedule_reduction",
            "stage:race_verification", "stage:vulnerability_analysis",
            "stage:vulnerability_verification",
        ]


class TestCli:
    def test_trace_command(self, capsys, tmp_path):
        base = str(tmp_path / "trace")
        assert main(["trace", "libsafe", "--out", base, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowest spans" in out
        with open(base + ".json") as handle:
            chrome = json.load(handle)
        assert all(e["ph"] in ("B", "E") for e in chrome["traceEvents"])
        with open(base + ".jsonl") as handle:
            assert all(json.loads(line) for line in handle if line.strip())

    def test_explain_listing(self, capsys):
        assert main(["explain", "libsafe"]) == 0
        out = capsys.readouterr().out
        assert "disposition" in out
        assert "attack" in out

    def test_explain_single_report(self, capsys, libsafe_result):
        uid = libsafe_result.provenance.by_disposition(
            DISPOSITION_ATTACK)[0].uid
        assert main(["explain", "libsafe", uid]) == 0
        out = capsys.readouterr().out
        assert "racing on" in out
        assert "disposition: attack" in out

    def test_explain_unknown_uid_fails_with_listing(self, capsys):
        assert main(["explain", "libsafe", "r999-999"]) == 1
        err = capsys.readouterr().err
        assert "known uids" in err

    def test_detect_trace_flag_writes_jsonl(self, capsys, tmp_path):
        path = str(tmp_path / "detect.trace.jsonl")
        assert main(["detect", "libsafe", "--trace", path]) == 0
        with open(path) as handle:
            rows = [json.loads(line) for line in handle if line.strip()]
        assert any(row["name"] == "pipeline" for row in rows)

    def test_export_trace_flag_writes_chrome(self, capsys, tmp_path):
        out = str(tmp_path / "libsafe.json")
        trace = str(tmp_path / "trace.json")
        assert main(["export", "libsafe", out, "--trace", trace]) == 0
        with open(trace) as handle:
            chrome = json.load(handle)
        assert chrome["traceEvents"]
