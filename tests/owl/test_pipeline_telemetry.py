"""End-to-end telemetry determinism: snapshots, profiles, history records.

The telemetry block carries the same parity contract as
``StageCounters.parity_dict()``: its bytes depend only on what was
computed, never on job count, completion order, or wall-clock time.
"""

import json

import pytest

from repro.apps.registry import spec_by_name
from repro.owl.pipeline import OwlPipeline


@pytest.fixture(scope="module")
def serial_result():
    return OwlPipeline(spec_by_name("memcached")).run()


class TestSnapshotParity:
    def test_serial_snapshot_has_every_layer(self, serial_result):
        snapshot = serial_result.telemetry
        counters = snapshot["counters"]
        assert counters["pipeline.raw_reports"] == \
            serial_result.counters.raw_reports
        assert counters["stage.detect.vm_steps"] > 0
        assert snapshot["gauges"]["spans.records"] == \
            len(serial_result.spans)
        assert snapshot["histograms"]["vm.steps_per_seed"]["count"] == \
            counters["stage.detect.runs"]
        assert serial_result.metrics.telemetry == snapshot

    def test_jobs2_snapshot_bit_identical_to_serial(self, serial_result):
        parallel = OwlPipeline(spec_by_name("memcached"), jobs=2).run()
        serial_bytes = json.dumps(serial_result.telemetry, sort_keys=True)
        parallel_bytes = json.dumps(parallel.telemetry, sort_keys=True)
        assert serial_bytes == parallel_bytes

    def test_two_serial_runs_snapshot_identically(self, serial_result):
        again = OwlPipeline(spec_by_name("memcached")).run()
        assert again.telemetry == serial_result.telemetry

    def test_cache_counters_fold_into_snapshot(self, tmp_path):
        from repro.owl.cache import ResultCache

        spec = spec_by_name("memcached")
        cold = OwlPipeline(spec, cache=ResultCache(str(tmp_path))).run()
        warm = OwlPipeline(spec, cache=ResultCache(str(tmp_path))).run()
        assert cold.telemetry["counters"]["cache.detect.misses"] > 0
        assert warm.telemetry["counters"]["cache.detect.hits"] > 0


class TestProfiledPipeline:
    def test_profile_summary_lands_in_snapshot_and_metrics(self):
        result = OwlPipeline(spec_by_name("memcached"), profile=97).run()
        assert result.profile is not None
        assert result.profile.samples > 0
        block = result.telemetry["profile"]
        assert block["interval"] == 97
        assert block["samples"] == result.profile.samples
        assert result.metrics.as_dict()["telemetry"]["profile"] == block

    def test_profiled_counters_match_unprofiled(self, serial_result):
        profiled = OwlPipeline(spec_by_name("memcached"), profile=97).run()
        assert profiled.counters.parity_dict() == \
            serial_result.counters.parity_dict()

    def test_profile_parity_across_job_counts(self):
        serial = OwlPipeline(spec_by_name("memcached"), profile=97).run()
        parallel = OwlPipeline(spec_by_name("memcached"), profile=97,
                               jobs=2).run()
        assert serial.profile.to_payload() == parallel.profile.to_payload()

    def test_unprofiled_run_has_no_profile_block(self, serial_result):
        assert serial_result.profile is None
        assert "profile" not in serial_result.telemetry


class TestHistoryRecords:
    def test_record_parity_modulo_wall_time(self, serial_result):
        from repro.owl.history import record_from_metrics

        parallel = OwlPipeline(spec_by_name("memcached"), jobs=2).run()
        serial_record = record_from_metrics(
            serial_result.metrics.as_dict(), timestamp=0.0, git_rev="test")
        parallel_record = record_from_metrics(
            parallel.metrics.as_dict(), timestamp=0.0, git_rev="test")
        for record in (serial_record, parallel_record):
            for key in ("total_seconds", "steps_per_second", "stage_wall",
                        "jobs"):
                record.pop(key)
        assert serial_record == parallel_record
        assert serial_record["counters"]["pipeline.raw_reports"] == \
            serial_result.counters.raw_reports
