"""Tests for Algorithm 1, the static vulnerability analyzer."""

from repro.apps.libsafe import build_module as build_libsafe
from repro.detectors import run_tsan
from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import FunctionType, I32, I64, I8, VOID, ptr
from repro.owl.hints import format_full_report, format_vulnerability_report
from repro.owl.vuln_analysis import (
    AnalysisOptions,
    DependenceKind,
    VulnerabilityAnalyzer,
)
from repro.owl.vuln_sites import VulnSiteType


def analyze_first_report(module, variable_fragment, options=None,
                         seeds=range(8)):
    reports, _ = run_tsan(module, seeds=seeds)
    report = next(
        r for r in reports if variable_fragment in (r.variable or "")
    )
    analyzer = VulnerabilityAnalyzer(module, options=options)
    return analyzer.analyze_report(report), report


def build_data_dep_module():
    """Racy length feeds memcpy: a one-function DATA_DEP case."""
    b = IRBuilder(Module("m"))
    from repro.ir.types import ArrayType

    length_var = b.global_var("length", I64, 4)
    src = b.global_var("src", ArrayType(I8, 64))
    dst = b.global_var("dst", ArrayType(I8, 64))
    b.begin_function("reader", I32, [("arg", ptr(I8))], source_file="dd.c")
    length = b.load(length_var, line=10)
    b.call("memcpy", [b.cast("bitcast", dst, ptr(I8), line=11),
                      b.cast("bitcast", src, ptr(I8), line=11), length],
           line=11)
    b.ret(b.i32(0), line=12)
    b.end_function()
    b.begin_function("writer", I32, [("arg", ptr(I8))], source_file="dd.c")
    b.store(8, length_var, line=20)
    b.ret(b.i32(0), line=21)
    b.end_function()
    b.begin_function("main", I32, [], source_file="dd.c")
    t1 = b.call("thread_create", [b.module.get_function("reader"), b.null()],
                line=30)
    t2 = b.call("thread_create", [b.module.get_function("writer"), b.null()],
                line=31)
    b.call("thread_join", [t1], line=32)
    b.call("thread_join", [t2], line=33)
    b.ret(b.i32(0), line=34)
    b.end_function()
    verify_module(b.module)
    return b.module


class TestDataDependence:
    def test_racy_length_reaches_memcpy(self):
        vulns, _ = analyze_first_report(build_data_dep_module(), "length")
        assert len(vulns) == 1
        vuln = vulns[0]
        assert vuln.kind is DependenceKind.DATA_DEP
        assert vuln.site_type is VulnSiteType.MEMORY_OP
        assert vuln.site.location.line == 11

    def test_no_false_report_on_benign_counter(self):
        from tests.helpers import build_counter_race

        module = build_counter_race(iterations=2)
        reports, _ = run_tsan(module, seeds=range(6))
        analyzer = VulnerabilityAnalyzer(module)
        for report in reports:
            assert analyzer.analyze_report(report) == []


class TestLibsafeCase:
    """The paper's running example (section 4.3, Figures 4 and 5)."""

    def _dying_vulns(self, options=None):
        module = build_libsafe()
        from repro.apps.libsafe import workload_inputs

        reports, _ = run_tsan(module, inputs=workload_inputs(), seeds=range(8))
        report = next(r for r in reports if "dying" in (r.variable or ""))
        analyzer = VulnerabilityAnalyzer(module, options=options)
        return analyzer.analyze_report(report), module

    def test_strcpy_reported_control_dependent(self):
        vulns, _ = self._dying_vulns()
        assert len(vulns) == 1
        vuln = vulns[0]
        assert vuln.kind is DependenceKind.CTRL_DEP
        assert vuln.site_type is VulnSiteType.MEMORY_OP
        assert vuln.site.location.filename == "intercept.c"
        assert vuln.site.location.line == 165

    def test_branch_hint_is_line_164(self):
        """Figure 5: the corrupted branch at intercept.c:164."""
        vulns, _ = self._dying_vulns()
        branches = vulns[0].branches
        assert len(branches) == 1
        assert branches[0].location.line == 164

    def test_report_formatting_matches_figure5(self):
        vulns, _ = self._dying_vulns()
        text = format_vulnerability_report(vulns[0])
        assert "---- Ctrl Dependent Vulnerability----" in text
        assert "(intercept.c:164)" in text
        assert "Vulnerable Site Location: (intercept.c:165)" in text

    def test_full_report_has_figure4_stack(self):
        vulns, _ = self._dying_vulns()
        text = format_full_report(vulns[0])
        assert "stack_check (util.c:145)" in text

    def test_no_control_flow_ablation_misses_libsafe(self):
        """Livshits&Lam-style data-flow-only analysis cannot see the attack."""
        vulns, _ = self._dying_vulns(options=AnalysisOptions.no_control_flow())
        assert vulns == []

    def test_intraprocedural_ablation_misses_libsafe(self):
        """Yamaguchi-style intra-procedural analysis: the bug is in
        stack_check, the site in libsafe_strcpy."""
        vulns, _ = self._dying_vulns(options=AnalysisOptions.intraprocedural())
        assert all(v.site.location.line != 165 for v in vulns)

    def test_conseq_style_misses_caller_site(self):
        """ConSeq-style (no caller pops): the site is one level *up*."""
        vulns, _ = self._dying_vulns(options=AnalysisOptions.conseq_style())
        assert all(v.site.location.line != 165 for v in vulns)

    def test_whole_program_finds_site_too(self):
        vulns, _ = self._dying_vulns(options=AnalysisOptions.whole_program())
        assert any(v.site.location.line == 165 for v in vulns)


class TestIndirectCallSites:
    def test_corrupted_function_pointer_reported(self):
        b = IRBuilder(Module("m"))
        fn_slot = b.global_var("handler", I64, 0)
        b.begin_function("caller", I32, [("arg", ptr(I8))], source_file="fp.c")
        addr = b.load(fn_slot, line=10)
        fn = b.cast("inttoptr", addr, ptr(FunctionType(VOID, [])), line=11)
        b.call(fn, [], line=12)
        b.ret(b.i32(0), line=13)
        b.end_function()
        b.begin_function("nuller", I32, [("arg", ptr(I8))], source_file="fp.c")
        b.store(0, fn_slot, line=20)
        b.ret(b.i32(0), line=21)
        b.end_function()
        b.begin_function("main", I32, [], source_file="fp.c")
        t1 = b.call("thread_create", [b.module.get_function("caller"),
                                      b.null()], line=30)
        t2 = b.call("thread_create", [b.module.get_function("nuller"),
                                      b.null()], line=31)
        b.call("thread_join", [t1], line=32)
        b.call("thread_join", [t2], line=33)
        b.ret(b.i32(0), line=34)
        b.end_function()
        verify_module(b.module)
        vulns, _ = analyze_first_report(b.module, "handler")
        assert any(
            v.site_type is VulnSiteType.NULL_PTR_DEREF
            and v.site.location.line == 12
            for v in vulns
        )


class TestDedupAndBudget:
    def test_one_report_per_site_and_kind(self):
        module = build_data_dep_module()
        reports, _ = run_tsan(module, seeds=range(8))
        report = next(r for r in reports if "length" in (r.variable or ""))
        analyzer = VulnerabilityAnalyzer(module)
        vulns = analyzer.analyze_report(report)
        keys = [v.dedup_key for v in vulns]
        assert len(keys) == len(set(keys))

    def test_instruction_budget_bounds_work(self):
        module = build_data_dep_module()
        reports, _ = run_tsan(module, seeds=range(8))
        report = next(r for r in reports if "length" in (r.variable or ""))
        options = AnalysisOptions(instruction_budget=1)
        analyzer = VulnerabilityAnalyzer(module, options=options)
        analyzer.analyze_report(report)
        assert analyzer.budget_exhausted
