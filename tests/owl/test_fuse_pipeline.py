"""Fused pipeline integration: parity, cache keys, the schema-8 fuse block.

The contract under test: ``fuse=True`` changes steps/s and nothing else.
Reports, Table-3 parity counters and the telemetry snapshot (minus the two
``fuse.*`` counters that record the request itself) must be bit-identical
to an unfused run, at any job count.
"""

import json

import pytest

from repro.apps.registry import spec_by_name
from repro.owl.integration import run_detector
from repro.owl.pipeline import OwlPipeline
from repro.runtime.metrics import load_metrics


@pytest.fixture(scope="module")
def baseline_result():
    return OwlPipeline(spec_by_name("memcached")).run()


@pytest.fixture(scope="module")
def fused_result():
    return OwlPipeline(spec_by_name("memcached"), fuse=True).run()


def _without_fuse_counters(snapshot):
    trimmed = json.loads(json.dumps(snapshot))
    trimmed["counters"] = {
        key: value for key, value in trimmed["counters"].items()
        if not key.startswith("fuse.")
    }
    return trimmed


class TestFusedPipelineParity:
    def test_parity_counters_identical(self, baseline_result, fused_result):
        assert (fused_result.counters.parity_dict()
                == baseline_result.counters.parity_dict())

    def test_report_sets_identical(self, baseline_result, fused_result):
        assert (sorted(r.static_key for r in fused_result.raw_reports)
                == sorted(r.static_key for r in baseline_result.raw_reports))
        assert (sorted(r.static_key for r in fused_result.remaining_reports)
                == sorted(r.static_key
                          for r in baseline_result.remaining_reports))

    def test_telemetry_identical_modulo_fuse_counters(
            self, baseline_result, fused_result):
        fused = _without_fuse_counters(fused_result.telemetry)
        assert fused == _without_fuse_counters(baseline_result.telemetry)

    def test_fuse_request_counters(self, fused_result, baseline_result):
        counters = fused_result.telemetry["counters"]
        assert counters["fuse.enabled"] == 1
        # the detect stage always runs fused; the annotated re-run only
        # exists when adhoc-sync annotations were found (memcached: none)
        assert counters["fuse.stages_requested"] >= 1
        assert "fuse.enabled" not in baseline_result.telemetry["counters"]

    def test_fused_telemetry_invariant_across_jobs(self, fused_result):
        parallel = OwlPipeline(spec_by_name("memcached"), jobs=2,
                               fuse=True).run()
        assert (json.dumps(parallel.telemetry, sort_keys=True)
                == json.dumps(fused_result.telemetry, sort_keys=True))


class TestSchema8FuseBlock:
    def test_block_shape(self, fused_result):
        block = fused_result.metrics.fuse
        assert block["enabled"] is True
        assert block["compiled_blocks"] > 0
        assert block["fused_steps"] >= block["fused_runs"] > 0
        assert 0.0 < block["fused_step_share"] <= 1.0
        assert block["bailouts"] >= 0
        assert block["invalidations"] == 0

    def test_unfused_run_has_no_block(self, baseline_result):
        assert baseline_result.metrics.fuse is None
        assert "fuse" not in baseline_result.metrics.as_dict()

    def test_save_load_round_trip(self, fused_result, tmp_path):
        path = fused_result.metrics.save(str(tmp_path / "metrics.json"))
        data = load_metrics(path)
        assert data["schema"] == 9
        assert data["fuse"] == fused_result.metrics.fuse


class TestFuseCacheKeys:
    def test_payload_carries_fuse_only_when_on(self):
        from repro.owl.batch import _detect_payload

        on = _detect_payload("tsan", None, 0, "main", {}, None, 1000, 3, ())
        assert "fuse" not in on
        off = _detect_payload("tsan", None, 0, "main", {}, None, 1000, 3, (),
                              fuse=True)
        assert off["fuse"] is True

    def test_fused_and_stepwise_seeds_cache_separately(self, tmp_path):
        from repro.owl.batch import _detect_item_key, _detect_payload
        from repro.owl.cache import ResultCache

        cache = ResultCache(str(tmp_path))
        module = spec_by_name("memcached").build()
        plain = _detect_payload("tsan", None, 0, "main", {}, None, 1000, 3, ())
        fused = _detect_payload("tsan", None, 0, "main", {}, None, 1000, 3, (),
                                fuse=True)
        assert (_detect_item_key(cache, module, plain)
                != _detect_item_key(cache, module, fused))


class TestFusedDetectorSweeps:
    def test_serial_fused_reports_identical(self):
        spec = spec_by_name("memcached")
        plain, _ = run_detector(spec)
        fused, _ = run_detector(spec, fuse=True)
        assert (sorted(r.static_key for r in fused)
                == sorted(r.static_key for r in plain))

    def test_pooled_fused_reports_identical(self):
        spec = spec_by_name("memcached")
        serial, _ = run_detector(spec, fuse=True)
        pooled, _ = run_detector(spec, fuse=True, jobs=2)
        assert (sorted(r.static_key for r in pooled)
                == sorted(r.static_key for r in serial))
