"""Tests for fault-tolerant batch execution (BatchPolicy / run_tasks).

The contract under test: a crashed worker process, a transient exception,
or a hung item never fails the batch — it is retried with backoff and, if
still failing, re-run serially in-process with identical results.  The
failure-injecting workers discriminate on the parent pid, so they fail in
worker processes but succeed when the serial fallback runs them inline.
"""

import os
import time

import pytest

from concurrent.futures import ProcessPoolExecutor

from repro.owl.batch import BatchPolicy, run_cached_tasks, run_tasks
from repro.owl.cache import ResultCache


def crashing_worker(payload):
    """Dies hard in a pool worker; succeeds when run in the parent."""
    if os.getpid() != payload["parent"]:
        os._exit(1)
    return {"ok": payload["index"]}


def flaky_worker(payload):
    """Raises in a pool worker; succeeds when run in the parent."""
    if os.getpid() != payload["parent"]:
        raise RuntimeError("transient failure injected for the test")
    return {"ok": payload["index"]}


def hanging_worker(payload):
    """Outlives any reasonable timeout in a pool worker; instant inline."""
    if os.getpid() != payload["parent"]:
        time.sleep(20)
    return {"ok": payload["index"]}


def payloads(count=3):
    return [{"index": index, "parent": os.getpid()}
            for index in range(count)]


class TestWorkerCrash:
    def test_dead_worker_degrades_to_serial(self):
        policy = BatchPolicy(retries=1, backoff=0.01)
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = run_tasks(crashing_worker, payloads(), pool, policy)
        assert [r["ok"] for r in results] == [0, 1, 2]
        assert policy.worker_failures > 0
        assert policy.serial_fallbacks == 3

    def test_counters_surface_in_metrics_block(self):
        policy = BatchPolicy(retries=0, backoff=0.01)
        with ProcessPoolExecutor(max_workers=2) as pool:
            run_tasks(crashing_worker, payloads(), pool, policy)
        block = policy.counters()
        assert block["worker_failures"] == policy.worker_failures
        assert block["serial_fallbacks"] == 3
        assert block["retry_budget"] == 0


class TestTransientFailure:
    def test_exceptions_are_retried_with_backoff(self):
        policy = BatchPolicy(retries=2, backoff=0.01)
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = run_tasks(flaky_worker, payloads(), pool, policy)
        assert [r["ok"] for r in results] == [0, 1, 2]
        assert policy.retried > 0           # extra waves were attempted
        assert policy.serial_fallbacks == 3  # and still needed the fallback

    def test_no_fallback_raises_with_counts(self):
        policy = BatchPolicy(retries=0, backoff=0.01, serial_fallback=False)
        with ProcessPoolExecutor(max_workers=2) as pool:
            with pytest.raises(RuntimeError, match="3/3 batch items failed"):
                run_tasks(flaky_worker, payloads(), pool, policy)


class TestTimeout:
    def test_hung_item_times_out_then_runs_inline(self):
        policy = BatchPolicy(timeout=0.3, retries=0)
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = run_tasks(hanging_worker, payloads(), pool, policy)
        assert [r["ok"] for r in results] == [0, 1, 2]
        assert policy.timeouts == 3
        assert policy.serial_fallbacks == 3


class TestHealthyPath:
    def test_no_pool_runs_serially(self):
        policy = BatchPolicy()
        results = run_tasks(flaky_worker, payloads(), None, policy)
        assert [r["ok"] for r in results] == [0, 1, 2]
        assert policy.worker_failures == 0

    def test_failed_items_still_land_in_the_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        items = payloads()
        keys = [cache.key("demo", index=p["index"]) for p in items]
        policy = BatchPolicy(retries=0, backoff=0.01)
        results = run_cached_tasks(
            flaky_worker, items, cache=cache, stage="demo", keys=keys,
            jobs=2, policy=policy,
        )
        assert [r["ok"] for r in results] == [0, 1, 2]
        assert policy.serial_fallbacks == 3
        assert cache.stores == 3  # fallback results are cached like any other
        warm = run_cached_tasks(
            flaky_worker, items, cache=cache, stage="demo", keys=keys,
            jobs=1, policy=BatchPolicy(),
        )
        assert all(r.get("cached") for r in warm)
        assert [r["ok"] for r in warm] == [0, 1, 2]
