"""End-to-end tests for the OWL pipeline on the fast targets."""

import pytest

from repro.owl.pipeline import OwlPipeline
from repro.owl.vuln_analysis import AnalysisOptions


@pytest.fixture(scope="module")
def libsafe_result():
    from repro.apps.libsafe import libsafe_spec

    return OwlPipeline(libsafe_spec()).run()


@pytest.fixture(scope="module")
def ssdb_result():
    from repro.apps.ssdb import ssdb_spec

    return OwlPipeline(ssdb_spec()).run()


class TestLibsafePipeline:
    """Table 2/3 row Libsafe: 3 raw, 0 adhoc, 0 eliminated, 3 remaining,
    3 OWL reports, 1 attack."""

    def test_raw_reports(self, libsafe_result):
        assert libsafe_result.counters.raw_reports == 3

    def test_no_adhoc_syncs(self, libsafe_result):
        assert libsafe_result.counters.adhoc_syncs == 0

    def test_all_races_verified(self, libsafe_result):
        assert libsafe_result.counters.verifier_eliminated == 0
        assert libsafe_result.counters.remaining == 3

    def test_three_owl_reports(self, libsafe_result):
        assert libsafe_result.counters.vulnerability_reports == 3

    def test_attack_detected_and_realized(self, libsafe_result):
        detected = libsafe_result.detected_ground_truths()
        assert [t.attack_id for t in detected] == ["libsafe-2.0-16"]

    def test_attack_site_is_strcpy_line(self, libsafe_result):
        realized = libsafe_result.realized_attacks()
        sites = {(a.vulnerability.site.location.filename,
                  a.vulnerability.site.location.line) for a in realized}
        assert ("intercept.c", 165) in sites

    def test_unmatched_reports_not_realized(self, libsafe_result):
        unmatched = [a for a in libsafe_result.attacks if a.ground_truth is None]
        assert unmatched  # the two benign OWL reports
        assert all(not a.realized for a in unmatched)


class TestSsdbPipeline:
    """Table 3 row SSDB: 12 raw, 0 adhoc, 10 eliminated, 2 remaining."""

    def test_counters_match_paper(self, ssdb_result):
        counters = ssdb_result.counters
        assert counters.raw_reports == 12
        assert counters.adhoc_syncs == 0
        assert counters.verifier_eliminated == 10
        assert counters.remaining == 2

    def test_reduction_ratio(self, ssdb_result):
        assert ssdb_result.counters.reduction_ratio > 0.8

    def test_cve_detected(self, ssdb_result):
        detected = ssdb_result.detected_ground_truths()
        assert [t.attack_id for t in detected] == ["ssdb-cve-2016-1000324"]

    def test_vulnerability_site_is_line_347(self, ssdb_result):
        sites = {v.site.location.line for v in ssdb_result.vulnerabilities}
        assert sites == {347}

    def test_ctrl_dep_report_carries_branch_359(self, ssdb_result):
        from repro.owl.vuln_analysis import DependenceKind

        ctrl = [v for v in ssdb_result.vulnerabilities
                if v.kind is DependenceKind.CTRL_DEP]
        assert ctrl
        assert any(b.location.line == 359 for b in ctrl[0].branches)


class TestPipelineOptions:
    def test_no_verify_skips_stage5(self):
        from repro.apps.libsafe import libsafe_spec

        result = OwlPipeline(libsafe_spec(),
                             verify_vulnerabilities=False).run()
        assert result.attacks == []
        assert result.counters.vulnerability_reports == 3

    def test_ablated_analysis_misses_libsafe(self):
        from repro.apps.libsafe import libsafe_spec

        result = OwlPipeline(
            libsafe_spec(),
            analysis_options=AnalysisOptions.no_control_flow(),
        ).run()
        sites = {v.site.location.line for v in result.vulnerabilities}
        assert 165 not in sites

    def test_counters_serializable(self, libsafe_result):
        data = libsafe_result.counters.as_dict()
        assert set(data) >= {
            "raw_reports", "adhoc_syncs", "remaining", "reduction_ratio",
        }
