"""Tests for first-class replay through the pipeline (repro.owl.replay).

The contract under test: a recorded sweep replayed with the detector
attached yields exactly the reports, counters and provenance dispositions
of the live run it recorded — and any drift is counted loudly, never
absorbed.
"""

import os

from repro.apps.registry import spec_by_name
from repro.owl.cache import ResultCache
from repro.owl.integration import run_detector
from repro.owl.pipeline import OwlPipeline
from repro.owl.replay import (
    ReplaySource,
    default_record_dir,
    discover_seeds,
    load_recorded_logs,
    log_path,
    record_program,
)
from repro.runtime.diffcheck import compare_fingerprints

from tests.owl.test_batch import _fingerprints


class TestRecordProgram:
    def test_records_one_log_per_seed(self):
        spec = spec_by_name("libsafe")
        source = record_program(spec, seeds=range(4))
        assert [log.seed for log in source.logs] == [0, 1, 2, 3]
        assert all(log.decisions > 0 for log in source.logs)
        assert all(log.program == "libsafe" for log in source.logs)
        assert len(source.record_stats) == 4

    def test_saves_and_reloads_logs(self, tmp_path):
        spec = spec_by_name("libsafe")
        out_dir = str(tmp_path / "records")
        source = record_program(spec, seeds=range(3), out_dir=out_dir)
        assert discover_seeds(out_dir, "libsafe") == [0, 1, 2]
        loaded = load_recorded_logs(spec, record_dir=out_dir,
                                    seeds=range(3))
        for original, clone in zip(source.logs, loaded.logs):
            assert clone.to_payload() == original.to_payload()

    def test_missing_log_names_the_record_verb(self, tmp_path):
        spec = spec_by_name("libsafe")
        try:
            load_recorded_logs(spec, record_dir=str(tmp_path),
                               seeds=range(1))
        except FileNotFoundError as exc:
            assert "owl record" in str(exc)
        else:
            raise AssertionError("expected FileNotFoundError")

    def test_fingerprints_compare_clean(self):
        spec = spec_by_name("libsafe")
        source = record_program(spec, seeds=range(2), fingerprint=True)
        assert len(source.fingerprints) == 2
        assert all(fp.mode == "recorded" for fp in source.fingerprints)


class TestReplaySource:
    def test_replayed_reports_match_live_run(self):
        spec = spec_by_name("libsafe")
        live_reports, _ = run_detector(spec)
        source = record_program(spec)
        replayed_reports, stats = source.run_detector()
        assert _fingerprints(replayed_reports) == _fingerprints(live_reports)
        assert [stat.seed for stat in stats] == list(spec.detect_seeds)
        assert source.replays == len(source.logs)
        assert source.total_divergences == 0
        assert source.unfaithful_replays == 0

    def test_replayed_ski_reports_match_live_run(self):
        spec = spec_by_name("linux")
        live_reports, _ = run_detector(spec)
        source = record_program(spec)
        replayed_reports, _ = source.run_detector()
        assert _fingerprints(replayed_reports) == _fingerprints(live_reports)
        assert source.total_divergences == 0

    def test_metrics_block_accumulates(self):
        spec = spec_by_name("libsafe")
        source = record_program(spec, seeds=range(2))
        source.run_detector()
        source.run_detector()
        block = source.metrics_block()
        assert block["logs"] == 2
        assert block["replays"] == 4
        assert block["decisions"] == sum(
            log.decisions for log in source.logs)
        assert block["unfaithful_replays"] == 0


class TestPipelineReplay:
    def test_pipeline_counters_and_dispositions_match_live(self):
        spec = spec_by_name("memcached")
        live = OwlPipeline(spec).run()
        source = record_program(spec)
        replayed = OwlPipeline(spec, replay=source).run()
        assert replayed.counters.parity_dict() == live.counters.parity_dict()
        live_dispositions = {
            record.uid: record.disposition
            for record in live.provenance}
        replay_dispositions = {
            record.uid: record.disposition
            for record in replayed.provenance}
        assert replay_dispositions == live_dispositions
        block = replayed.metrics.as_dict()["replay"]
        # the annotated re-run replays the sweep a second time — but only
        # when the program has adhoc syncs to annotate
        sweeps = 2 if replayed.counters.adhoc_syncs else 1
        assert block["replays"] == sweeps * len(source.logs)
        assert block["schedule_divergences"] == 0
        assert block["sync_divergences"] == 0
        assert block["thread_divergences"] == 0
        assert block["unfaithful_replays"] == 0

    def test_replay_and_explore_are_mutually_exclusive(self):
        import pytest

        from repro.owl.explore import ExplorePolicy

        spec = spec_by_name("libsafe")
        source = record_program(spec, seeds=range(1))
        with pytest.raises(ValueError, match="explore"):
            OwlPipeline(spec, explore=ExplorePolicy(), replay=source)

    def test_no_replay_block_without_replay(self):
        result = OwlPipeline(spec_by_name("libsafe")).run()
        assert "replay" not in result.metrics.as_dict()


class TestRecordModeCaching:
    def test_record_mode_returns_logs_and_warms_both_stages(self, tmp_path):
        from repro.owl.batch import run_seeds_parallel

        spec = spec_by_name("libsafe")
        cache = ResultCache(str(tmp_path / "cache"))
        logs = []
        reports, stats = run_seeds_parallel(
            spec.detector, spec.build(), spec.module_factory,
            entry=spec.entry, inputs=spec.workload_inputs,
            seeds=range(4), max_steps=spec.max_steps, jobs=1,
            cache=cache, record=True, logs_out=logs,
        )
        assert [log.seed for log in logs] == [0, 1, 2, 3]
        assert cache.stage_counters("detect")["stores"] == 4
        assert cache.stage_counters("record")["stores"] == 4

        # a warm re-run answers every seed from the cache, logs included
        cache2 = ResultCache(str(tmp_path / "cache"))
        logs2 = []
        reports2, _ = run_seeds_parallel(
            spec.detector, spec.build(), spec.module_factory,
            entry=spec.entry, inputs=spec.workload_inputs,
            seeds=range(4), max_steps=spec.max_steps, jobs=1,
            cache=cache2, record=True, logs_out=logs2,
        )
        assert cache2.stage_counters("detect")["misses"] == 0
        assert cache2.stage_counters("record")["misses"] == 0
        assert [log.to_payload() for log in logs2] == \
            [log.to_payload() for log in logs]
        assert _fingerprints(reports2) == _fingerprints(reports)

    def test_missing_log_entry_forces_live_rerun(self, tmp_path):
        """Warm detect entry + cold record entry must still yield a log."""
        from repro.owl.batch import run_seeds_parallel

        spec = spec_by_name("libsafe")
        root = str(tmp_path / "cache")
        cache = ResultCache(root)
        run_seeds_parallel(
            spec.detector, spec.build(), spec.module_factory,
            entry=spec.entry, inputs=spec.workload_inputs,
            seeds=range(2), max_steps=spec.max_steps, jobs=1,
            cache=cache, record=True, logs_out=[],
        )
        # drop the record stage entirely; detect entries stay warm
        import shutil
        shutil.rmtree(os.path.join(root, "record"))
        cache2 = ResultCache(root)
        logs = []
        run_seeds_parallel(
            spec.detector, spec.build(), spec.module_factory,
            entry=spec.entry, inputs=spec.workload_inputs,
            seeds=range(2), max_steps=spec.max_steps, jobs=1,
            cache=cache2, record=True, logs_out=logs,
        )
        assert [log.seed for log in logs] == [0, 1]
        assert cache2.stage_counters("record")["stores"] == 2

    def test_detect_entries_identical_with_and_without_record(self, tmp_path):
        """Recording must not perturb the detect stage's cache content."""
        from repro.owl.batch import run_seeds_parallel

        spec = spec_by_name("libsafe")
        plain_root = str(tmp_path / "plain")
        record_root = str(tmp_path / "record")
        run_seeds_parallel(
            spec.detector, spec.build(), spec.module_factory,
            entry=spec.entry, inputs=spec.workload_inputs,
            seeds=range(2), max_steps=spec.max_steps, jobs=1,
            cache=ResultCache(plain_root),
        )
        run_seeds_parallel(
            spec.detector, spec.build(), spec.module_factory,
            entry=spec.entry, inputs=spec.workload_inputs,
            seeds=range(2), max_steps=spec.max_steps, jobs=1,
            cache=ResultCache(record_root), record=True, logs_out=[],
        )

        def entries(root, stage):
            import json

            found = {}
            stage_dir = os.path.join(root, stage)
            for directory, _, names in os.walk(stage_dir):
                for name in names:
                    with open(os.path.join(directory, name)) as handle:
                        envelope = json.load(handle)
                    envelope["value"]["stats"][-1] = 0.0  # wall seconds
                    found[name] = envelope
            return found

        assert entries(plain_root, "detect") == entries(record_root, "detect")

    def test_log_entries_smaller_than_detect_entries(self, tmp_path):
        from repro.owl.batch import run_seeds_parallel

        spec = spec_by_name("memcached")
        root = str(tmp_path / "cache")
        run_seeds_parallel(
            spec.detector, spec.build(), spec.module_factory,
            entry=spec.entry, inputs=spec.workload_inputs,
            seeds=range(2), max_steps=spec.max_steps, jobs=1,
            cache=ResultCache(root), record=True, logs_out=[],
        )

        def sizes(stage):
            stage_dir = os.path.join(root, stage)
            return sorted(
                os.path.getsize(os.path.join(directory, name))
                for directory, _, names in os.walk(stage_dir)
                for name in names)

        record_sizes, detect_sizes = sizes("record"), sizes("detect")
        assert len(record_sizes) == len(detect_sizes) == 2
        assert max(record_sizes) < min(detect_sizes)


class TestReplayCli:
    def test_record_then_replay_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = str(tmp_path / "records")
        assert main(["record", "libsafe", "--seeds", "2",
                     "--out", out_dir]) == 0
        recorded = capsys.readouterr().out
        assert "recorded 2 logs" in recorded
        assert main(["replay", "libsafe", "--record-dir", out_dir,
                     "--check-fingerprint"]) == 0
        replayed = capsys.readouterr().out
        assert "divergences: 0" in replayed
        assert "2/2 seeds bit-identical" in replayed

    def test_replay_without_logs_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["replay", "libsafe",
                     "--record-dir", str(tmp_path / "empty")]) == 1
        assert "owl record" in capsys.readouterr().err

    def test_explain_replay_matches_live_dispositions(self, tmp_path,
                                                      capsys):
        from repro.cli import main

        assert main(["explain", "libsafe"]) == 0
        live = capsys.readouterr().out
        record_dir = str(tmp_path / "records")
        # first run records on the fly, second replays the saved logs
        assert main(["explain", "libsafe", "--replay",
                     "--record-dir", record_dir]) == 0
        replayed_fresh = capsys.readouterr().out
        assert main(["explain", "libsafe", "--replay",
                     "--record-dir", record_dir]) == 0
        replayed_again = capsys.readouterr().out
        assert replayed_fresh == live
        assert replayed_again == live
        assert discover_seeds(record_dir, "libsafe") == \
            list(spec_by_name("libsafe").detect_seeds)


class TestDefaultPaths:
    def test_default_record_dir_and_log_path(self):
        directory = default_record_dir("apache")
        assert directory.endswith(os.path.join("records", "apache"))
        assert log_path(directory, "apache", 7).endswith(
            "apache_seed0007.jsonl")

    def test_discover_seeds_ignores_foreign_files(self, tmp_path):
        directory = str(tmp_path)
        for name in ("apache_seed0001.jsonl", "apache_seed0010.jsonl",
                     "other_seed0002.jsonl", "apache_seedxx.jsonl",
                     "notes.txt"):
            with open(os.path.join(directory, name), "w") as handle:
                handle.write("{}\n")
        assert discover_seeds(directory, "apache") == [1, 10]
        assert discover_seeds(str(tmp_path / "absent"), "apache") == []
