"""Tests for coverage-guided schedule exploration (repro.owl.explore)."""

import json

import pytest

from repro import OwlPipeline, spec_by_name
from repro.detectors.tsan import run_tsan
from repro.owl.explore import ExplorePolicy, explore_program, explore_seeds
from tests.helpers import build_counter_race


def _static_keys(reports):
    return sorted({report.static_key for report in reports})


class TestExplorePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExplorePolicy(max_seeds=0)
        with pytest.raises(ValueError):
            ExplorePolicy(wave_size=0)
        with pytest.raises(ValueError):
            ExplorePolicy(saturation_k=0)

    def test_ladders(self):
        policy = ExplorePolicy()
        assert policy.ladder_for("tsan", 3)[0] == ("random", 3)
        assert policy.ladder_for("ski", 3) == (
            ("pct", 3), ("pct", 5), ("pct", 7))
        override = ExplorePolicy(ladder=[("pct", 9)])
        assert override.ladder_for("tsan", 3) == (("pct", 9),)


class TestExplorationLoop:
    def test_saturates_and_skips_budget(self):
        module = build_counter_race(iterations=3)
        policy = ExplorePolicy(max_seeds=20, wave_size=4, saturation_k=2)
        reports, stats = explore_seeds("tsan", module, explore=policy)
        result = policy.last
        assert result.saturated
        assert result.saturation_wave == result.waves[-1].index
        assert result.seeds_executed < policy.max_seeds
        assert result.seeds_skipped == policy.max_seeds - result.seeds_executed
        assert len(stats) == result.seeds_executed
        assert len(reports) > 0

    def test_dry_wave_escalates_before_saturation(self):
        module = build_counter_race(iterations=3)
        policy = ExplorePolicy(max_seeds=40, wave_size=4, saturation_k=3)
        explore_seeds("tsan", module, explore=policy)
        result = policy.last
        escalations = [wave for wave in result.waves if wave.escalated]
        assert escalations, "a dry wave should climb the ladder"
        first = escalations[0]
        follow = result.waves[first.index + 1]
        assert (follow.scheduler, follow.depth) != (
            result.waves[0].scheduler, result.waves[0].depth)

    def test_escalate_false_keeps_base_family(self):
        module = build_counter_race(iterations=3)
        policy = ExplorePolicy(max_seeds=16, wave_size=4, saturation_k=2,
                               escalate=False)
        explore_seeds("tsan", module, explore=policy)
        assert {wave.scheduler for wave in policy.last.waves} == {"random"}
        assert not any(wave.escalated for wave in policy.last.waves)

    def test_wave_seeds_are_the_fixed_sweep_prefix(self):
        module = build_counter_race(iterations=3)
        policy = ExplorePolicy(max_seeds=10, wave_size=3, saturation_k=4)
        explore_seeds("tsan", module, explore=policy)
        flattened = [seed for wave in policy.last.waves for seed in wave.seeds]
        assert flattened == list(range(policy.last.seeds_executed))

    def test_metrics_block_shape(self):
        module = build_counter_race(iterations=3)
        policy = ExplorePolicy(max_seeds=8, wave_size=4)
        explore_seeds("tsan", module, explore=policy)
        block = policy.last.metrics_block()
        assert block["detector"] == "tsan"
        assert block["policy"]["max_seeds"] == 8
        assert block["seeds_executed"] + block["seeds_skipped"] == 8
        assert "saturation_wave" in block
        for wave in block["waves"]:
            assert {"index", "seeds", "scheduler", "depth", "new_pairs",
                    "new_signatures", "total_pairs", "dry",
                    "escalated"} <= set(wave)
        json.dumps(block)  # must be JSON-serializable as-is


class TestMatchesFixedSweep:
    """Acceptance: explore finds the fixed range(20) races with fewer seeds."""

    @pytest.mark.parametrize("program", ["memcached", "apache_log"])
    def test_explore_matches_fixed_sweep_with_fewer_seeds(self, program):
        spec = spec_by_name(program)
        policy = ExplorePolicy(max_seeds=20, wave_size=4, saturation_k=2)
        reports, _ = explore_program(spec, explore=policy)
        fixed, _ = run_tsan(
            spec.build(), entry=spec.entry, inputs=spec.workload_inputs,
            seeds=range(20), max_steps=spec.max_steps)
        assert _static_keys(reports) == _static_keys(fixed)
        result = policy.last
        assert result.seeds_executed < 20 or result.saturation_wave is not None


class TestJobParity:
    def test_jobs1_vs_jobs2_identical_exploration(self):
        def run(jobs):
            policy = ExplorePolicy(max_seeds=12, wave_size=4, saturation_k=2)
            reports, _ = explore_program(
                spec_by_name("memcached"), explore=policy, jobs=jobs)
            return (
                sorted(report.uid for report in reports),
                json.dumps(policy.last.metrics_block(), sort_keys=True),
            )

        serial = run(1)
        parallel = run(2)
        assert serial[0] == parallel[0]
        assert serial[1] == parallel[1]


class TestPipelineIntegration:
    def test_pipeline_records_exploration(self):
        policy = ExplorePolicy(max_seeds=16, wave_size=4, saturation_k=2)
        result = OwlPipeline(spec_by_name("memcached"),
                             explore=policy).run()
        assert result.explore is not None
        assert result.explore.seeds_executed >= 1
        data = result.metrics.as_dict()
        assert data["schema"] == 9
        assert data["explore"]["saturation_wave"] == \
            result.explore.saturation_wave
        detect_stage = result.metrics.stage_by_name("detect")
        assert detect_stage.extra["seeds_executed"] == \
            result.explore.seeds_executed
        assert "saturation_wave" in detect_stage.extra

    def test_pipeline_without_explore_has_no_block(self):
        result = OwlPipeline(spec_by_name("memcached")).run()
        assert result.explore is None
        assert "explore" not in result.metrics.as_dict()
