"""Tests for oracle-verified automated race repair (repro.owl.repair).

The contract under test: ``repair_program`` emits a patch only when all
three gates pass (diff oracle, detector re-run, scheduler sweep); the
emitted patches agree with the ``apps/*_fixed`` ground truth; the
detector gate has teeth (a candidate that merely *silences* the detector
is rejected because the recorded attack still realizes); and the
schema-9 ``repair`` metrics block is bit-identical across job counts.
"""

import json

import pytest

from repro.apps.registry import spec_by_name
from repro.ir.patch import ModulePatcher, clone_module
from repro.owl.batch import vuln_to_payload
from repro.owl.cache import ResultCache
from repro.owl.pipeline import OwlPipeline
from repro.owl.provenance import DISPOSITION_REPAIRED
from repro.owl.repair import (
    gate_detector,
    merge_repair_telemetry,
    repair_program,
)


@pytest.fixture(scope="module")
def memcached_repair():
    spec = spec_by_name("memcached")
    result = OwlPipeline(spec).run()
    return spec, result, repair_program(spec, result=result)


@pytest.fixture(scope="module")
def apache_log_run():
    spec = spec_by_name("apache_log")
    return spec, OwlPipeline(spec).run()


class TestRepairMemcached:
    def test_every_verified_race_repaired(self, memcached_repair):
        _, result, repair = memcached_repair
        assert len(repair.targets) == len(result.remaining_reports) == 4
        assert len(repair.emitted) == 4
        assert all(target.emitted.strategy == "mutex"
                   for target in repair.targets)

    def test_emitted_patches_passed_all_three_gates(self, memcached_repair):
        _, _, repair = memcached_repair
        for target in repair.emitted:
            gates = target.emitted.gates
            assert sorted(gates) == ["detector", "oracle", "schedulers"]
            assert all(gate["passed"] for gate in gates.values())
            assert gates["detector"]["pair_reported"] is False
            assert gates["oracle"]["novel_behaviours"] == []

    def test_ground_truth_disposition_matches(self, memcached_repair):
        _, _, repair = memcached_repair
        assert repair.ground_truth_spec == "memcached_fixed"
        assert all(target.ground_truth_race_gone for target in repair.emitted)

    def test_provenance_disposition_is_repaired(self, memcached_repair):
        _, result, repair = memcached_repair
        for target in repair.emitted:
            record = result.provenance.get(target.uid)
            assert record is not None
            assert "repaired" in record.verdicts()
            assert record.disposition == DISPOSITION_REPAIRED

    def test_patch_payload_carries_evidence(self, memcached_repair):
        _, _, repair = memcached_repair
        payloads = repair.patch_payloads()
        assert len(payloads) == 4
        for payload in payloads:
            assert payload["program"] == "memcached"
            assert payload["strategy"] == "mutex"
            assert payload["ir_diff"]
            assert payload["ops"]
            assert payload["patched_digest"] != repair.original_digest
            assert payload["ground_truth_race_gone"] is True
            json.dumps(payload)  # artifacts must be JSON-serializable

    def test_metrics_block_and_counters(self, memcached_repair):
        _, _, repair = memcached_repair
        block = repair.metrics_block()
        assert block["targets"] == 4
        assert block["emitted"] == 4
        assert block["ground_truth"] == {
            "spec": "memcached_fixed", "checked": 4, "matched": 4}
        counters = block["counters"]
        assert counters["repair.targets"] == 4
        assert counters["repair.emitted"] == 4
        assert counters["repair.emitted.mutex"] == 4
        assert counters["repair.gate.oracle.pass"] >= 4
        assert "repair.unrepaired" not in counters

    def test_describe_names_each_target(self, memcached_repair):
        _, _, repair = memcached_repair
        text = repair.describe()
        assert "4/4 verified races repaired" in text
        assert "repaired via mutex" in text
        assert "oracle=ok, detector=ok, schedulers=ok" in text

    def test_merge_repair_telemetry_lands_counters(self, memcached_repair):
        _, result, repair = memcached_repair
        merge_repair_telemetry(result, repair)
        counters = result.telemetry["counters"]
        assert counters["repair.emitted"] == 4
        assert result.metrics.telemetry is result.telemetry


class TestDetectorGateTeeth:
    def test_atomic_promotion_is_rejected(self, apache_log_run):
        """A patch that silences tsan without fixing the bug must fail
        gate (b): the detector and predict legs go quiet, but re-driving
        the recorded attack still realizes it."""
        spec, result = apache_log_run
        report = sorted(result.remaining_reports,
                        key=lambda r: r.static_key)[0]
        uids = set()
        for other in result.remaining_reports:
            if other.variable == report.variable:
                uids.update(other.static_key)
        patched = clone_module(spec.build())
        patcher = ModulePatcher(patched)
        for uid in sorted(uids):
            patcher.set_atomic(patched.instruction_by_uid(uid), True)
        probes = [(vuln_to_payload(detected.vulnerability),
                   detected.ground_truth)
                  for detected in result.attacks
                  if detected.realized and detected.ground_truth is not None]
        assert probes, "pipeline did not realize the apache_log attack"
        gate = gate_detector(spec, patched, report.static_key,
                             variable=report.variable, attack_probes=probes)
        assert gate["pair_reported"] is False     # detector silenced...
        assert gate["attacks_realized"]           # ...but the attack lives
        assert gate["passed"] is False


class TestRepairApacheLog:
    def test_all_targets_repaired_and_ground_truth_agrees(
            self, apache_log_run):
        spec, result = apache_log_run
        repair = repair_program(spec, result=result)
        assert len(repair.emitted) == len(repair.targets) == 4
        assert repair.ground_truth_spec == "apache_log_fixed"
        assert all(target.ground_truth_race_gone for target in repair.emitted)

    def test_metrics_block_identical_across_job_counts(self):
        blocks = []
        for jobs in (1, 2):
            spec = spec_by_name("apache_log")
            result = OwlPipeline(spec, jobs=jobs).run()
            blocks.append(repair_program(spec, result=result).metrics_block())
        assert json.dumps(blocks[0], sort_keys=True) == \
            json.dumps(blocks[1], sort_keys=True)


class TestRepairCache:
    def test_warm_cache_replays_identical_gates(self, tmp_path):
        spec = spec_by_name("apache_log")
        result = OwlPipeline(spec).run()
        cold_cache = ResultCache(str(tmp_path))
        cold = repair_program(spec, result=result, cache=cold_cache)
        assert cold_cache.stage_counters("repair")["stores"] > 0
        warm_cache = ResultCache(str(tmp_path))
        warm = repair_program(spec, result=result, cache=warm_cache)
        assert warm_cache.stage_counters("repair")["hits"] > 0
        assert all(target.emitted.cached for target in warm.emitted)
        assert json.dumps(cold.metrics_block(), sort_keys=True) == \
            json.dumps(warm.metrics_block(), sort_keys=True)
