"""Tests for the vulnerable-site registry and the adhoc-sync detector."""

from repro.detectors import run_tsan
from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import FunctionType, I32, I64, I8, VOID, ptr
from repro.owl.adhoc import AdhocSyncDetector
from repro.owl.vuln_sites import DEFAULT_REGISTRY, VulnSiteRegistry, VulnSiteType
from tests.helpers import build_adhoc_sync_module, build_counter_race


def fresh_builder():
    b = IRBuilder(Module("m"))
    b.begin_function("f", VOID, [("p", ptr(I64)), ("x", I64)], source_file="v.c")
    return b


class TestVulnSiteRegistry:
    def test_memory_op_classification(self):
        b = fresh_builder()
        call = b.call("strcpy", [b.null(), b.null()], line=1)
        assert DEFAULT_REGISTRY.site_type(call) is VulnSiteType.MEMORY_OP

    def test_privilege_file_fork_ops(self):
        b = fresh_builder()
        assert DEFAULT_REGISTRY.site_type(
            b.call("setuid", [0], line=1)) is VulnSiteType.PRIVILEGE_OP
        assert DEFAULT_REGISTRY.site_type(
            b.call("access", [b.null(), 0], line=2)) is VulnSiteType.FILE_OP
        assert DEFAULT_REGISTRY.site_type(
            b.call("execve", [b.null(), b.null(), b.null()], line=3),
        ) is VulnSiteType.FORK_OP
        assert DEFAULT_REGISTRY.site_type(
            b.call("eval", [b.null()], line=4)) is VulnSiteType.FORK_OP

    def test_free_is_memory_op(self):
        b = fresh_builder()
        call = b.call("free", [b.null()], line=1)
        assert DEFAULT_REGISTRY.site_type(call) is VulnSiteType.MEMORY_OP

    def test_benign_external_unclassified(self):
        b = fresh_builder()
        call = b.call("strlen", [b.null()], line=1)
        assert DEFAULT_REGISTRY.site_type(call) is None

    def test_load_with_corrupted_pointer_is_deref_site(self):
        b = fresh_builder()
        load = b.load(b.arg("p"), line=1)
        assert DEFAULT_REGISTRY.site_type(load) is None
        assert DEFAULT_REGISTRY.site_type(
            load, pointer_corrupted=True) is VulnSiteType.NULL_PTR_DEREF

    def test_indirect_call_with_corrupted_callee(self):
        b = fresh_builder()
        fn = b.cast("inttoptr", b.arg("x"), ptr(FunctionType(VOID, [])), line=1)
        call = b.call(fn, [], line=2)
        assert DEFAULT_REGISTRY.site_type(
            call, pointer_corrupted=True) is VulnSiteType.NULL_PTR_DEREF
        assert DEFAULT_REGISTRY.site_type(call) is None

    def test_registry_extensible(self):
        """Paper: 'more types can be easily added'."""
        registry = VulnSiteRegistry()
        registry.add_function("my_crypto_op", VulnSiteType.PRIVILEGE_OP)
        assert "my_crypto_op" in registry.functions_of(VulnSiteType.PRIVILEGE_OP)

    def test_pointer_operand_extraction(self):
        b = fresh_builder()
        load = b.load(b.arg("p"), line=1)
        assert DEFAULT_REGISTRY.pointer_operand(load) is b.arg("p")
        store = b.store(b.arg("x"), b.arg("p"), line=2)
        assert DEFAULT_REGISTRY.pointer_operand(store) is b.arg("p")
        direct = b.call("strlen", [b.null()], line=3)
        assert DEFAULT_REGISTRY.pointer_operand(direct) is None


class TestAdhocSyncDetector:
    def _flag_report(self, module, seeds=range(6)):
        reports, _ = run_tsan(module, seeds=seeds)
        return next(r for r in reports if "flag" in (r.variable or ""))

    def test_spin_wait_recognized(self):
        module = build_adhoc_sync_module()
        report = self._flag_report(module)
        annotation = AdhocSyncDetector().analyze_report(report)
        assert annotation is not None
        assert annotation.read_location.line == 21
        assert annotation.write_location.line == 11

    def test_counter_race_not_adhoc(self):
        module = build_counter_race(iterations=3)
        reports, _ = run_tsan(module, seeds=range(6))
        detector = AdhocSyncDetector()
        assert all(detector.analyze_report(r) is None for r in reports)

    def test_worker_loop_with_side_effects_not_adhoc(self):
        """SSDB's log-clean loop re-checks a flag but does real work."""
        b = IRBuilder(Module("m"))
        flag = b.global_var("flag", I32, 0)
        out = b.global_var("out", I64, 0)
        b.begin_function("worker", I32, [("arg", ptr(I8))], source_file="w.c")
        b.br("loop", line=1)
        b.at("loop")
        value = b.load(flag, line=2)
        done = b.icmp("ne", value, 0, line=2)
        b.cond_br(done, "out_block", "work", line=2)
        b.at("work")
        counter = b.load(out, line=3)
        b.store(b.add(counter, 1, line=3), out, line=3)  # shared side effect
        b.br("loop", line=3)
        b.at("out_block")
        b.ret(b.i32(0), line=4)
        b.end_function()
        b.begin_function("setter", I32, [("arg", ptr(I8))], source_file="w.c")
        b.call("usleep", [30], line=5)
        b.store(1, flag, line=6)
        b.ret(b.i32(0), line=7)
        b.end_function()
        b.begin_function("main", I32, [], source_file="w.c")
        t1 = b.call("thread_create", [b.module.get_function("worker"),
                                      b.null()], line=8)
        t2 = b.call("thread_create", [b.module.get_function("setter"),
                                      b.null()], line=9)
        b.call("thread_join", [t1], line=10)
        b.call("thread_join", [t2], line=11)
        b.ret(b.i32(0), line=12)
        b.end_function()
        verify_module(b.module)
        report = self._flag_report(b.module, seeds=range(8))
        assert AdhocSyncDetector().analyze_report(report) is None

    def test_nonconstant_write_not_adhoc(self):
        """The write side must store a constant (the 'true' flag value)."""
        b = IRBuilder(Module("m"))
        flag = b.global_var("flag", I64, 0)
        b.begin_function("waiter", I32, [("arg", ptr(I8))], source_file="n.c")
        b.br("spin", line=1)
        b.at("spin")
        value = b.load(flag, line=2)
        done = b.icmp("ne", value, 0, line=2)
        b.cond_br(done, "after", "spin", line=2)
        b.at("after")
        b.ret(b.i32(0), line=3)
        b.end_function()
        b.begin_function("setter", I32, [("arg", ptr(I8))], source_file="n.c")
        computed = b.call("getpid", [], line=4)
        b.store(b.cast("zext", computed, I64, line=5), flag, line=5)
        b.ret(b.i32(0), line=6)
        b.end_function()
        b.begin_function("main", I32, [], source_file="n.c")
        t1 = b.call("thread_create", [b.module.get_function("waiter"),
                                      b.null()], line=7)
        t2 = b.call("thread_create", [b.module.get_function("setter"),
                                      b.null()], line=8)
        b.call("thread_join", [t1], line=9)
        b.call("thread_join", [t2], line=10)
        b.ret(b.i32(0), line=11)
        b.end_function()
        verify_module(b.module)
        report = self._flag_report(b.module, seeds=range(8))
        assert AdhocSyncDetector().analyze_report(report) is None

    def test_analyze_tags_reports_and_builds_set(self):
        module = build_adhoc_sync_module()
        reports, _ = run_tsan(module, seeds=range(6))
        annotations = AdhocSyncDetector().analyze(reports)
        assert annotations.unique_static_count() == 1
        tagged = [r for r in reports if AdhocSyncDetector.TAG in r.tags]
        assert len(tagged) == 1
