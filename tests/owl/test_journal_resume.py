"""Tests for the run journal and ``owl resume`` (repro.owl.journal).

The contract under test: an interrupted ``--cache`` run leaves a half
journal (``begin`` + some ``item`` lines, possibly a torn last line, no
``end``); resuming re-runs the pipeline against the same cache, so
completed work is a warm hit and the finished run's counters and
provenance are bit-identical to an uninterrupted run.
"""

import glob
import json
import os

import pytest

from repro.apps.registry import spec_by_name
from repro.owl.batch import BatchPolicy
from repro.owl.cache import ResultCache
from repro.owl.journal import (
    BatchJournal,
    JOURNAL_SCHEMA,
    journal_path,
    load_journal,
    resume,
)
from repro.owl.pipeline import OwlPipeline


def completed_run(tmp_path, config=None):
    """A full cached+journaled libsafe run; returns (result, paths)."""
    spec = spec_by_name("libsafe")
    cache_dir = str(tmp_path / "cache")
    path = journal_path(cache_dir, spec.name)
    journal = BatchJournal(path)
    result = OwlPipeline(
        spec, cache=ResultCache(cache_dir), policy=BatchPolicy(),
        journal=journal, journal_config=config or {},
    ).run()
    journal.close()
    return result, path, cache_dir


def interrupt(path, cache_dir, drop_lines=3, torn=True, delete_entries=2):
    """Rewind a completed journal to look like a crashed run."""
    lines = open(path).read().splitlines()
    assert json.loads(lines[-1])["event"] == "end"
    kept = lines[:-drop_lines]
    text = "\n".join(kept) + "\n"
    if torn:
        text += '{"event": "item", "stage": "race_ver'  # torn mid-write
    with open(path, "w") as handle:
        handle.write(text)
    victims = sorted(glob.glob(
        os.path.join(cache_dir, "race_verify", "*", "*.json")))
    for victim in victims[:delete_entries]:
        os.unlink(victim)
    return len(victims[:delete_entries])


class TestJournalFile:
    def test_records_every_item_and_the_end(self, tmp_path):
        result, path, _ = completed_run(tmp_path)
        state = load_journal(path)
        assert state.begun and state.completed
        assert state.program == "libsafe"
        counts = state.items_by_stage()
        assert counts["detect"] == len(result.spec.detect_seeds)
        assert counts["adhoc"] == 1
        assert "race_verify" in counts and "vuln_analysis" in counts

    def test_begin_truncates_a_previous_journal(self, tmp_path):
        _, path, cache_dir = completed_run(tmp_path)
        journal = BatchJournal(path)
        journal.begin("libsafe", jobs=1, cache_dir=cache_dir)
        journal.close()
        state = load_journal(path)
        assert state.begun and not state.completed and not state.items

    def test_unsupported_schema_is_rejected(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({
                "event": "begin", "schema": JOURNAL_SCHEMA + 1,
                "program": "libsafe",
            }) + "\n")
        with pytest.raises(ValueError, match="unsupported schema"):
            load_journal(path)

    def test_torn_last_line_is_tolerated(self, tmp_path):
        _, path, cache_dir = completed_run(tmp_path)
        interrupt(path, cache_dir, delete_entries=0)
        state = load_journal(path)
        assert state.begun and not state.completed
        assert state.items  # everything before the torn line parsed
        assert state.skipped_lines == 1
        assert "1 corrupt line skipped" in state.describe()

    def test_torn_last_line_is_tolerated_even_when_strict(self, tmp_path):
        _, path, cache_dir = completed_run(tmp_path)
        interrupt(path, cache_dir, delete_entries=0)
        state = load_journal(path, strict=True)
        assert state.skipped_lines == 1

    def test_clean_journal_reports_no_skipped_lines(self, tmp_path):
        _, path, _ = completed_run(tmp_path)
        state = load_journal(path)
        assert state.skipped_lines == 0
        assert "corrupt" not in state.describe()

    def test_mid_file_corruption_is_counted(self, tmp_path):
        _, path, _ = completed_run(tmp_path)
        lines = open(path).read().splitlines()
        lines[2] = '{"event": "item", "stage": "det'  # torn mid-file
        lines[4] = "%% not json at all"
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        state = load_journal(path)
        assert state.skipped_lines == 2
        assert "2 corrupt lines skipped" in state.describe()

    def test_mid_file_corruption_raises_when_strict(self, tmp_path):
        _, path, _ = completed_run(tmp_path)
        lines = open(path).read().splitlines()
        lines[2] = '{"event": "item", "stage": "det'
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt record on line 3"):
            load_journal(path, strict=True)


class TestResume:
    def test_resume_finishes_a_half_journaled_run(self, tmp_path):
        baseline = OwlPipeline(spec_by_name("libsafe")).run()
        export = str(tmp_path / "out.json")
        metrics = str(tmp_path / "metrics.json")
        _, path, cache_dir = completed_run(
            tmp_path, config={"export_path": export, "metrics_path": metrics})
        os.unlink(export) if os.path.exists(export) else None
        deleted = interrupt(path, cache_dir)
        assert deleted > 0

        result, state = resume(path)
        assert result is not None
        assert result.counters.parity_dict() == baseline.counters.parity_dict()
        assert result.provenance.as_dict() == baseline.provenance.as_dict()
        # only the interrupted tail re-executed
        assert result.metrics.cache["misses"] == deleted
        assert result.metrics.cache["hits"] > 0
        # the journal's configured outputs were (re)written
        assert os.path.exists(export) and os.path.exists(metrics)
        finished = load_journal(path)
        assert finished.completed and finished.resumes == 1

    def test_resume_of_a_completed_run_is_a_noop(self, tmp_path):
        _, path, _ = completed_run(tmp_path)
        result, state = resume(path)
        assert result is None and state.completed

    def test_resume_refuses_mid_file_corruption(self, tmp_path):
        """Resume is strict: a corrupt line that is *not* the torn final
        line means lost completion records, so re-running against the
        cache could silently skip work — refuse instead."""
        _, path, cache_dir = completed_run(tmp_path)
        interrupt(path, cache_dir, delete_entries=0)
        lines = open(path).read().splitlines()
        lines[2] = '{"event": "item", "stage": "det'
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt record on line 3"):
            resume(path)

    def test_resume_without_begin_raises(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as handle:
            handle.write('{"event": "item", "stage": "detect", "key": "x"}\n')
        with pytest.raises(ValueError, match="no begin record"):
            resume(path)
