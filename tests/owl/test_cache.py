"""Tests for the content-addressed result cache (repro.owl.cache).

The contract under test: a cache hit returns exactly what the worker
originally produced, so cached and uncached runs — at any job count —
emit bit-identical ``StageCounters.parity_dict()`` and provenance
dispositions; and a corrupted or stale entry degrades to a miss, never to
a wrong result.
"""

import json
import os

import pytest

from repro.apps.registry import spec_by_name
from repro.owl.batch import BatchPolicy
from repro.owl.cache import (
    CACHE_SCHEMA,
    ResultCache,
    code_version,
    module_digest,
    stable_hash,
)
from repro.owl.pipeline import OwlPipeline
from repro.runtime.metrics import SCHEMA_VERSION


def run_pipeline(spec, cache=None, jobs=1):
    return OwlPipeline(
        spec, jobs=jobs, cache=cache,
        policy=BatchPolicy() if cache is not None else None,
    ).run()


@pytest.fixture(scope="module")
def baseline():
    """One uncached serial run to compare every cached variant against."""
    return run_pipeline(spec_by_name("libsafe"))


class TestKeys:
    def test_stable_hash_is_container_shape_insensitive(self):
        assert stable_hash((1, 2, 3)) == stable_hash([1, 2, 3])
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_stable_hash_handles_workload_value_types(self):
        # workload inputs use int keys, bytes and nested containers
        value = {1: b"\x00payload", "x": [(1, 2), None, True]}
        assert stable_hash(value) == stable_hash(value)
        assert stable_hash(value) != stable_hash({1: b"other"})

    def test_module_digest_distinguishes_programs(self):
        libsafe = spec_by_name("libsafe").build()
        ssdb = spec_by_name("ssdb").build()
        assert module_digest(libsafe) == module_digest(
            spec_by_name("libsafe").build())
        assert module_digest(libsafe) != module_digest(ssdb)

    def test_key_varies_with_stage_config_and_code(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        module = spec_by_name("libsafe").build()
        base = cache.key("detect", module=module, seed=1)
        assert base == cache.key("detect", module=module, seed=1)
        assert base != cache.key("detect", module=module, seed=2)
        assert base != cache.key("race_verify", module=module, seed=1)
        other = ResultCache(str(tmp_path), version="different-code")
        assert base != other.key("detect", module=module, seed=1)

    def test_code_version_is_memoized_and_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestWarmParity:
    def test_cold_then_warm_bit_identical(self, tmp_path, baseline):
        spec = spec_by_name("libsafe")
        cold_cache = ResultCache(str(tmp_path))
        cold = run_pipeline(spec, cache=cold_cache)
        assert cold_cache.hits == 0 and cold_cache.stores > 0
        assert cold.counters.parity_dict() == baseline.counters.parity_dict()

        warm_cache = ResultCache(str(tmp_path))
        warm = run_pipeline(spec, cache=warm_cache)
        # zero VM re-executions for unchanged work: every stage item hits
        assert warm_cache.misses == 0
        assert warm_cache.hits == cold_cache.stores
        assert warm.counters.parity_dict() == baseline.counters.parity_dict()
        assert (warm.provenance.as_dict()
                == baseline.provenance.as_dict()
                == cold.provenance.as_dict())

    def test_parallel_writes_serial_reads(self, tmp_path, baseline):
        spec = spec_by_name("libsafe")
        cold_cache = ResultCache(str(tmp_path))
        cold = run_pipeline(spec, cache=cold_cache, jobs=2)
        assert cold.counters.parity_dict() == baseline.counters.parity_dict()

        warm_cache = ResultCache(str(tmp_path))
        warm = run_pipeline(spec, cache=warm_cache, jobs=1)
        assert warm_cache.misses == 0 and warm_cache.hits > 0
        assert warm.counters.parity_dict() == baseline.counters.parity_dict()
        assert warm.provenance.as_dict() == baseline.provenance.as_dict()

    def test_metrics_blocks_present(self, tmp_path):
        spec = spec_by_name("libsafe")
        cache = ResultCache(str(tmp_path))
        result = run_pipeline(spec, cache=cache)
        data = result.metrics.as_dict()
        assert data["schema"] == SCHEMA_VERSION
        assert data["cache"]["stores"] == cache.stores
        assert data["cache"]["code_version"] == cache.version
        assert "detect" in data["cache"]["stages"]
        assert data["batch"]["retry_budget"] == 2
        detect = result.metrics.stage_by_name("detect")
        assert detect.extra["cache_misses"] > 0


class TestCorruptionHandling:
    def seed_one_entry(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key("detect", seed=7)
        path = cache.put("detect", key, {"answer": 42})
        return cache, key, path

    def test_round_trip(self, tmp_path):
        cache, key, _ = self.seed_one_entry(tmp_path)
        assert cache.get("detect", key) == {"answer": 42}
        assert cache.hits == 1

    def test_truncated_entry_is_a_miss_and_deleted(self, tmp_path):
        cache, key, path = self.seed_one_entry(tmp_path)
        with open(path, "w") as handle:
            handle.write('{"schema": %d, "val' % CACHE_SCHEMA)
        assert cache.get("detect", key) is None
        assert not os.path.exists(path)
        assert cache.misses == 1

    def test_schema_mismatch_is_a_miss_and_deleted(self, tmp_path):
        cache, key, path = self.seed_one_entry(tmp_path)
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["schema"] = CACHE_SCHEMA + 1
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert cache.get("detect", key) is None
        assert not os.path.exists(path)

    def test_misfiled_entry_is_a_miss_and_deleted(self, tmp_path):
        cache, key, path = self.seed_one_entry(tmp_path)
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["key"] = "0" * 64  # entry claims a different content key
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert cache.get("detect", key) is None
        assert not os.path.exists(path)

    def test_stale_code_version_never_matches(self, tmp_path):
        old = ResultCache(str(tmp_path), version="old-code")
        module = spec_by_name("libsafe").build()
        old.put("detect", old.key("detect", module=module, seed=1), {"v": 1})
        current = ResultCache(str(tmp_path), version="new-code")
        # same logical work, different code version -> different key -> miss
        assert current.get(
            "detect", current.key("detect", module=module, seed=1)) is None
        assert current.misses == 1

    def test_corrupted_entry_mid_pipeline_stays_correct(self, tmp_path,
                                                        baseline):
        import glob

        spec = spec_by_name("libsafe")
        run_pipeline(spec, cache=ResultCache(str(tmp_path)))
        entries = sorted(glob.glob(str(tmp_path / "detect" / "*" / "*.json")))
        assert entries
        with open(entries[0], "w") as handle:
            handle.write("not json at all")
        warm_cache = ResultCache(str(tmp_path))
        warm = run_pipeline(spec, cache=warm_cache)
        assert warm_cache.misses >= 1  # the corrupted entry re-ran
        assert warm.counters.parity_dict() == baseline.counters.parity_dict()
        assert warm.provenance.as_dict() == baseline.provenance.as_dict()


class TestPutFailure:
    """``put`` is an accelerator, never a correctness dependency: ordinary
    store failures degrade to counted misses with no temp-file litter, but
    Ctrl-C mid-store must still stop the run."""

    def test_store_error_degrades_and_counts(self, tmp_path, monkeypatch):
        import glob

        cache = ResultCache(str(tmp_path))

        def explode(_src, _dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        assert cache.put("detect", "ab" * 32, {"v": 1}) is None
        assert cache.store_errors == 1
        assert cache.stores == 0
        assert not glob.glob(str(tmp_path / "detect" / "*" / "*.tmp"))

    def test_unwritable_directory_degrades(self, tmp_path):
        blocker = tmp_path / "root"
        blocker.write_text("a file where the cache root should be")
        cache = ResultCache(str(blocker))
        assert cache.put("detect", "cd" * 32, {"v": 1}) is None
        assert cache.store_errors == 1

    def test_keyboard_interrupt_reraised_after_cleanup(self, tmp_path,
                                                       monkeypatch):
        import glob

        cache = ResultCache(str(tmp_path))

        def interrupt(_src, _dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(os, "replace", interrupt)
        with pytest.raises(KeyboardInterrupt):
            cache.put("detect", "ef" * 32, {"v": 1})
        # the partial temp file was discarded, and this is not an "error"
        # the run should account as degraded caching — it is a stop
        assert not glob.glob(str(tmp_path / "detect" / "*" / "*.tmp"))
        assert cache.store_errors == 0

    def test_failed_store_leaves_next_put_working(self, tmp_path,
                                                  monkeypatch):
        cache = ResultCache(str(tmp_path))
        original_replace = os.replace

        def explode_once(src, dst):
            monkeypatch.setattr(os, "replace", original_replace)
            raise OSError("transient")

        monkeypatch.setattr(os, "replace", explode_once)
        key = "12" * 32
        assert cache.put("detect", key, {"v": 1}) is None
        assert cache.put("detect", key, {"v": 1}) is not None
        assert cache.get("detect", key) == {"v": 1}
